"""Userspace scheduling daemon: drive a Scheduler through platform backends.

This is the deployment shape of the paper's system — a small loop that
every ``quantaLength``:

1. samples per-thread counters from a :class:`PerfBackend`,
2. packages them as the :class:`QuantumCounters` the scheduler expects,
3. asks the scheduler for actions,
4. enforces them through an :class:`AffinityBackend`
   (``Swap`` = two affinity changes, ``Move`` = one; ``Suspend`` is
   recorded but not enforceable via affinity and is reported back).

The daemon is clock-injectable (pass ``clock``/``sleep``) so tests run it
against fake backends without real time; on a live Linux system it runs
with :class:`~repro.platform.linux.LinuxAffinityBackend` — subject to the
fidelity caveat in DESIGN.md §2 (Python sampling overhead), which is why
the quantitative experiments use the simulator instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.platform.iface import AffinityBackend, CounterWindow, PerfBackend
from repro.schedulers.base import Move, Scheduler, SchedulingContext, Suspend, Swap, ThreadInfo
from repro.sim.counters import QuantumCounters, ThreadSample
from repro.sim.topology import Topology
from repro.util.validation import check_positive, require

__all__ = ["DaemonStats", "SchedulingDaemon"]


@dataclass
class DaemonStats:
    """Counters of one daemon session."""

    quanta: int = 0
    swaps: int = 0
    moves: int = 0
    suspend_requests: int = 0
    sample_failures: int = 0
    enforce_failures: int = 0
    #: (time_s, action) log of enforced actions
    actions: list[tuple[float, object]] = field(default_factory=list)


class SchedulingDaemon:
    """Observe -> decide -> enforce loop over platform backends."""

    def __init__(
        self,
        scheduler: Scheduler,
        perf: PerfBackend,
        affinity: AffinityBackend,
        topology: Topology,
        threads: dict[int, tuple[str, int]],
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        """
        Parameters
        ----------
        scheduler:
            Any policy implementing the Scheduler interface.
        perf / affinity:
            Platform backends (simulated or Linux).
        topology:
            Machine description (core count must match the affinity
            backend's view).
        threads:
            tid -> (process name, process group id) of the threads to
            manage.
        clock / sleep:
            Injectable time source — tests pass a fake pair.
        """
        require(len(threads) >= 1, "daemon needs at least one thread to manage")
        require(
            topology.n_vcores <= affinity.n_cores() or True,
            "topology larger than the machine",
        )
        self.scheduler = scheduler
        self.perf = perf
        self.affinity = affinity
        self.topology = topology
        self.threads = dict(threads)
        self.clock = clock
        self.sleep = sleep
        self.stats = DaemonStats()
        infos = tuple(
            ThreadInfo(tid=tid, benchmark=name, group=group, member=i)
            for i, (tid, (name, group)) in enumerate(sorted(self.threads.items()))
        )
        self.scheduler.prepare(
            SchedulingContext(topology=topology, threads=infos)
        )
        self._quantum_index = 0
        self._t0 = self.clock()

    # ------------------------------------------------------------------ API

    def apply_initial_placement(self) -> dict[int, int]:
        """Pin every managed thread to its scheduler-chosen initial core."""
        placement = self.scheduler.initial_placement()
        for tid, vcore in placement.items():
            if tid in self.threads:
                self._set_affinity(tid, vcore)
        return placement

    def run_quantum(self) -> QuantumCounters:
        """Execute one observe/decide/enforce cycle (blocking for Q)."""
        qlen = float(self.scheduler.quantum_length_s())
        check_positive(qlen, "quantum length")
        self.sleep(qlen)
        now = self.clock() - self._t0

        windows = self._sample(qlen)
        placement = self._current_placement()
        counters = self._to_counters(windows, placement, now, qlen)

        actions = self.scheduler.decide(counters, placement)
        for action in actions:
            self._enforce(action, placement, now)
        self.stats.quanta += 1
        self._quantum_index += 1
        return counters

    def run(self, duration_s: float) -> DaemonStats:
        """Run cycles until ``duration_s`` of (injected) clock time passed."""
        check_positive(duration_s, "duration_s")
        end = self.clock() + duration_s
        while self.clock() < end:
            self.run_quantum()
        return self.stats

    # ------------------------------------------------------------- internals

    def _sample(self, window_s: float) -> list[CounterWindow]:
        try:
            return self.perf.sample(sorted(self.threads), window_s)
        except OSError:
            self.stats.sample_failures += 1
            return []

    def _current_placement(self) -> dict[int, int]:
        placement: dict[int, int] = {}
        for tid in self.threads:
            try:
                cores = self.affinity.get_affinity(tid)
            except OSError:
                self.stats.enforce_failures += 1
                continue
            if cores:
                placement[tid] = min(cores)
        return placement

    def _to_counters(
        self,
        windows: list[CounterWindow],
        placement: dict[int, int],
        now: float,
        qlen: float,
    ) -> QuantumCounters:
        samples = tuple(
            ThreadSample(
                tid=w.tid,
                vcore=placement.get(w.tid, -1),
                instructions=w.instructions,
                llc_accesses=w.llc_accesses,
                llc_misses=w.llc_misses,
                runtime_s=w.window_s,
            )
            for w in windows
            if w.tid in self.threads
        )
        core_bw = np.zeros(self.topology.n_vcores)
        for s in samples:
            if 0 <= s.vcore < core_bw.size:
                core_bw[s.vcore] += s.access_rate
        return QuantumCounters(
            quantum_index=self._quantum_index,
            time_s=now,
            quantum_length_s=qlen,
            samples=samples,
            core_bandwidth=core_bw,
        )

    def _enforce(self, action, placement: dict[int, int], now: float) -> None:
        if isinstance(action, Swap):
            va = placement.get(action.tid_a)
            vb = placement.get(action.tid_b)
            if va is None or vb is None:
                self.stats.enforce_failures += 1
                return
            self._set_affinity(action.tid_a, vb)
            self._set_affinity(action.tid_b, va)
            self.stats.swaps += 1
        elif isinstance(action, Move):
            self._set_affinity(action.tid, action.vcore)
            self.stats.moves += 1
        elif isinstance(action, Suspend):
            # Affinity cannot suspend; surfaced in stats so callers notice.
            self.stats.suspend_requests += 1
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown action {action!r}")
        self.stats.actions.append((now, action))

    def _set_affinity(self, tid: int, vcore: int) -> None:
        try:
            self.affinity.set_affinity(tid, {vcore})
        except OSError:
            self.stats.enforce_failures += 1
