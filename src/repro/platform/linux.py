"""Best-effort real-Linux platform backend.

Demonstrates that the scheduler stack is deployable on a real kernel:

* affinity via :func:`os.sched_setaffinity` (exactly what the paper's
  Migrator does);
* a counter *approximation* from ``/proc/<pid>/task/<tid>/stat`` utime /
  stime deltas — real LLC-miss counters need the ``perf_event_open``
  syscall with elevated permissions, which this offline environment (and
  most CI machines) does not grant, so the backend reports CPU-time-based
  activity instead and flags itself as degraded.

Per DESIGN.md §2 the quantitative experiments never use this backend — the
repro band for this paper notes that Python sampling overhead destroys
measurement fidelity at the paper's 100 ms quanta.  The backend exists so
the port path is visible and testable (its parsing is unit-tested against
fixture data, and a smoke test exercises live affinity calls when the
kernel allows).
"""

from __future__ import annotations

import os
import time

from repro.platform.iface import (
    AffinityBackend,
    CounterWindow,
    PerfBackend,
    PlatformCaps,
)

__all__ = [
    "LinuxAffinityBackend",
    "ProcStatPerfBackend",
    "linux_caps",
    "parse_proc_stat",
]

#: Kernel clock ticks per second (USER_HZ); constant 100 on Linux/x86.
_USER_HZ = float(os.sysconf("SC_CLK_TCK")) if hasattr(os, "sysconf") else 100.0


def parse_proc_stat(content: str) -> tuple[float, float]:
    """Extract (utime_s, stime_s) from a ``/proc/.../stat`` line.

    The comm field (field 2) may contain spaces and parentheses, so fields
    are located relative to the *last* ``)`` — the only robust way to parse
    this file.
    """
    rparen = content.rfind(")")
    if rparen < 0:
        raise ValueError("malformed /proc stat line: no ')' found")
    rest = content[rparen + 1 :].split()
    # rest[0] is field 3 (state); utime is field 14, stime field 15.
    try:
        utime_ticks = float(rest[11])
        stime_ticks = float(rest[12])
    except (IndexError, ValueError) as exc:
        raise ValueError(f"malformed /proc stat line: {exc}") from exc
    return utime_ticks / _USER_HZ, stime_ticks / _USER_HZ


class LinuxAffinityBackend(AffinityBackend):
    """Thread pinning through ``sched_setaffinity``."""

    def set_affinity(self, tid: int, cores: set[int]) -> None:
        if not cores:
            raise ValueError("affinity set must be non-empty")
        os.sched_setaffinity(tid, cores)

    def get_affinity(self, tid: int) -> set[int]:
        return set(os.sched_getaffinity(tid))

    def n_cores(self) -> int:
        return os.cpu_count() or 1


class ProcStatPerfBackend(PerfBackend):
    """CPU-time sampling from ``/proc`` (degraded stand-in for perf).

    Reports CPU seconds consumed as the ``instructions`` proxy and zeros
    for cache counters; :meth:`available` is False so callers know memory
    classification is impossible on this backend.
    """

    def __init__(self, pid: int | None = None) -> None:
        self.pid = pid or os.getpid()
        self._last: dict[int, tuple[float, float]] = {}

    def _read_cpu_s(self, tid: int) -> float:
        path = f"/proc/{self.pid}/task/{tid}/stat"
        with open(path, "r") as fh:
            utime, stime = parse_proc_stat(fh.read())
        return utime + stime

    def sample(self, tids: list[int], window_s: float) -> list[CounterWindow]:
        now = time.monotonic()
        out: list[CounterWindow] = []
        for tid in tids:
            try:
                cpu = self._read_cpu_s(tid)
            except (OSError, ValueError):
                continue  # thread exited between listing and sampling
            prev = self._last.get(tid)
            self._last[tid] = (now, cpu)
            if prev is None:
                continue
            dt = now - prev[0]
            if dt <= 0:
                continue
            out.append(
                CounterWindow(
                    tid=tid,
                    window_s=dt,
                    instructions=(cpu - prev[1]),
                    llc_accesses=0.0,
                    llc_misses=0.0,
                )
            )
        return out

    def available(self) -> bool:
        return False  # degraded: no real cache counters without perf_event


def linux_caps() -> PlatformCaps:
    """Capabilities of the current kernel for this process."""
    affinity = hasattr(os, "sched_setaffinity")
    if affinity:
        try:
            os.sched_getaffinity(0)
        except OSError:
            affinity = False
    return PlatformCaps(
        perf_counters=False,
        affinity_control=affinity,
        description=(
            "Linux best-effort backend: sched_setaffinity + /proc CPU-time "
            "sampling (no perf_event access; see repro.platform.linux)"
        ),
    )
