"""Platform abstraction: perf-counter and affinity backends.

All experiments use the simulator backend; the Linux backend demonstrates
the real-kernel port path (see DESIGN.md §2 for the substitution note).
"""

from repro.platform.daemon import DaemonStats, SchedulingDaemon
from repro.platform.iface import (
    AffinityBackend,
    CounterWindow,
    PerfBackend,
    PlatformCaps,
)
from repro.platform.linux import (
    LinuxAffinityBackend,
    ProcStatPerfBackend,
    linux_caps,
    parse_proc_stat,
)
from repro.platform.simbackend import (
    SimAffinityBackend,
    SimPerfBackend,
    sim_caps,
)

__all__ = [
    "DaemonStats",
    "SchedulingDaemon",
    "AffinityBackend",
    "CounterWindow",
    "PerfBackend",
    "PlatformCaps",
    "LinuxAffinityBackend",
    "ProcStatPerfBackend",
    "linux_caps",
    "parse_proc_stat",
    "SimAffinityBackend",
    "SimPerfBackend",
    "sim_caps",
]
