"""The tuner's search space, derived from declarative `ParamSpec` schemas.

A :class:`SearchSpace` is a list of :class:`Dimension`s, one per tuned
parameter, each constructed from the policy's registry schema — the
*same* `ParamSpec` objects campaign planning validates against, so the
tuner can never emit a point the rest of the system would reject.  Where
a schema leaves a bound open (e.g. ``swap_size`` has no declared
maximum), a per-parameter practical range narrows the search to the
paper's neighbourhood; the schema bound always wins when tighter.

Values are kept JSON- and cache-key-clean: integers are Python ``int``,
floats are Python ``float`` rounded to a fixed precision — NumPy scalars
never leak into an `ExperimentSpec`, so candidate points hash stably
across runs (the whole-search determinism + resume story rests on this).

Every generated point is finally validated through
``PolicySpec.validate_params`` — the system's one validation path,
validate-never-coerce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.policies import REGISTRY
from repro.policies.spec import ParamSpec
from repro.util.validation import require

__all__ = ["DEFAULT_TUNABLES", "Dimension", "SearchSpace"]

#: The ROADMAP's tuning space: the two knobs the paper's Optimizer
#: adapts online, plus the fairness threshold θ_f it holds fixed.
DEFAULT_TUNABLES: tuple[str, ...] = (
    "swap_size",
    "quanta_length_s",
    "fairness_threshold",
)

#: Practical search ranges (lo, hi, log-scale?) refining open schema
#: bounds.  quanta/swap ranges bracket the paper's 32-point grid
#: (`repro.core.config`); θ_f searches the useful low band — the schema
#: allows up to 10, but beyond ~0.5 Dike effectively never acts.
_PRACTICAL_RANGES: dict[str, tuple[float, float, bool]] = {
    "swap_size": (2, 16, False),
    "quanta_length_s": (0.05, 2.0, True),
    "fairness_threshold": (0.0, 0.5, False),
    "lms_taps": (1, 16, False),
    "lms_mu": (0.05, 2.0, True),
}

#: Decimal places kept on float parameters: coarse enough that nearby
#: mutations collapse onto shared cache keys, fine enough to matter.
_FLOAT_DECIMALS = 4


@dataclass(frozen=True)
class Dimension:
    """One tunable parameter: its schema plus a bounded numeric range."""

    spec: ParamSpec
    lo: float
    hi: float
    log: bool = False

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_int(self) -> bool:
        return self.spec.type is int

    def _clip(self, value: float) -> float:
        return float(min(max(value, self.lo), self.hi))

    def _snap(self, value: float):
        """Round onto the dimension's lattice as a plain Python scalar."""
        if self.is_int:
            step = self.spec.multiple_of or 1
            snapped = int(round(value / step)) * step
            lo_i = int(np.ceil(self.lo / step)) * step
            hi_i = int(np.floor(self.hi / step)) * step
            return int(min(max(snapped, lo_i), hi_i))
        return round(self._clip(float(value)), _FLOAT_DECIMALS)

    def sample(self, rng: np.random.Generator):
        """Draw uniformly (log-uniformly for scale-like parameters)."""
        if self.log:
            value = float(
                np.exp(rng.uniform(np.log(self.lo), np.log(self.hi)))
            )
        else:
            value = float(rng.uniform(self.lo, self.hi))
        return self._snap(value)

    def mutate(self, value, rng: np.random.Generator):
        """A bounded local move: one lattice step for ints, a ~15%
        multiplicative (log) or 10%-of-range additive (linear) nudge."""
        if self.is_int:
            step = self.spec.multiple_of or 1
            return self._snap(value + step * int(rng.choice((-1, 1))))
        if self.log:
            return self._snap(float(value) * float(np.exp(rng.normal(0.0, 0.15))))
        span = self.hi - self.lo
        return self._snap(float(value) + float(rng.normal(0.0, 0.1 * span)))


def _dimension_for(spec: ParamSpec) -> Dimension:
    """Intersect the schema's bounds with the practical search range."""
    require(
        spec.type in (int, float) and not spec.choices,
        f"parameter {spec.name!r} is not numerically tunable "
        "(only bounded int/float parameters can be searched)",
    )
    lo, hi, log = _PRACTICAL_RANGES.get(
        spec.name, (None, None, False)
    )
    if lo is None:
        # No practical range on file: search around the default.
        default = float(spec.default)
        lo, hi = (default / 4 or 0.0), (default * 4 or 1.0)
    if spec.minimum is not None:
        lo = max(lo, spec.minimum)
        if spec.exclusive_min and lo == spec.minimum and not log:
            lo = lo + (1 if spec.type is int else 10 ** -_FLOAT_DECIMALS)
    if spec.maximum is not None:
        hi = min(hi, spec.maximum)
    require(lo < hi or (spec.type is int and lo <= hi),
            f"parameter {spec.name!r} has an empty search range")
    return Dimension(spec=spec, lo=float(lo), hi=float(hi), log=log)


class SearchSpace:
    """The tuned parameters of one policy, as sampleable dimensions."""

    def __init__(self, policy: str, dimensions: tuple[Dimension, ...]) -> None:
        require(len(dimensions) >= 1, "a search space needs >= 1 dimension")
        self.policy = policy
        self.dimensions = dimensions

    @classmethod
    def for_policy(
        cls, policy: str, tunables: tuple[str, ...] = DEFAULT_TUNABLES
    ) -> "SearchSpace":
        """Build the space from the policy's registry schema.

        Unknown policy names raise ``UnknownPolicyError``; a tunable the
        schema does not declare raises ``ValueError`` naming it.
        """
        spec = REGISTRY.get(policy)
        schema = {p.name: p for p in spec.params}
        missing = [n for n in tunables if n not in schema]
        require(
            not missing,
            f"policy {policy!r} has no parameter(s) {missing!r}; "
            f"tunable: {sorted(schema)}",
        )
        return cls(
            policy=spec.name,
            dimensions=tuple(_dimension_for(schema[n]) for n in tunables),
        )

    # ------------------------------------------------------------ points

    def validate(self, point: dict) -> dict:
        """The one validation path: the policy schema, never coercing."""
        REGISTRY.get(self.policy).validate_params(point)
        return point

    def sample(self, rng: np.random.Generator) -> dict:
        return self.validate({d.name: d.sample(rng) for d in self.dimensions})

    def mutate(
        self, point: dict, rng: np.random.Generator, prob: float = 0.4
    ) -> dict:
        """Mutate each coordinate independently with probability ``prob``
        (at least one coordinate always moves)."""
        moved = {
            d.name: rng.random() < prob for d in self.dimensions
        }
        if not any(moved.values()):
            forced = self.dimensions[int(rng.integers(len(self.dimensions)))]
            moved[forced.name] = True
        out = {
            d.name: d.mutate(point[d.name], rng) if moved[d.name]
            else point[d.name]
            for d in self.dimensions
        }
        return self.validate(out)

    def crossover(
        self, a: dict, b: dict, rng: np.random.Generator
    ) -> dict:
        """Uniform crossover: each coordinate from one parent, fairly."""
        out = {
            d.name: (a if rng.random() < 0.5 else b)[d.name]
            for d in self.dimensions
        }
        return self.validate(out)

    @staticmethod
    def key(point: dict) -> tuple:
        """Hashable identity of a point (for memoisation/dedup)."""
        return tuple(sorted(point.items()))
