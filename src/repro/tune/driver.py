"""The tune driver: candidate evaluation, objective, artifact.

The `Tuner` turns a strategy's abstract search into campaign work: each
candidate point becomes one `repro.spec.ExperimentSpec` per
(workload, seed) cell, the whole batch resolves through
``Campaign.gather`` — deduplicated, cached, parallel — and the
objective is the **mean Eqn. 4 fairness** across cells (higher is
better, matching the paper's evaluation axis).

Because evaluation is content-addressed, the search is *resumable*: an
interrupted run re-planned with the same seed proposes the same points
in the same order, finds its earlier evaluations in the cache and pays
only for the remainder.  For the same reason the artifact is
deterministic — it records the search trajectory and the winner, never
wall-clock or cache statistics.

The emitted artifact is a tuned-policy JSON document whose
``(policy, params)`` pair validates against the policy registry — i.e.
a serialised parameterisation any verb accepts via
``--policy name:k=v,...`` or a campaign ``param_grid``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.metrics.fairness import fairness
from repro.policies import REGISTRY
from repro.spec import ExperimentSpec, PolicyRef, TopologyRef
from repro.tune.space import DEFAULT_TUNABLES, SearchSpace
from repro.tune.strategies import STRATEGIES, Evaluation
from repro.util.rng import DEFAULT_SEED
from repro.util.validation import require
from repro.workloads.suite import WORKLOAD_TABLE, workload

__all__ = ["ARTIFACT_VERSION", "TuneConfig", "TuneResult", "Tuner"]

#: Version stamp of the tuned-policy artifact document.
ARTIFACT_VERSION = 1

#: Objective value of a cell whose run produced no finite fairness —
#: pessimistic enough that no healthy configuration can lose to it.
_FAILED_SCORE = -1.0


@dataclass(frozen=True)
class TuneConfig:
    """Everything a search depends on (and the artifact echoes)."""

    policy: str = "dike"
    strategy: str = "ga"
    budget: int = 24
    seed: int = 0
    tunables: tuple[str, ...] = DEFAULT_TUNABLES
    workloads: tuple[str, ...] = tuple(WORKLOAD_TABLE)
    eval_seeds: tuple[int, ...] = (DEFAULT_SEED,)
    work_scale: float = 1.0
    quick_scale: float = 0.05
    topology: str = "heterogeneous"
    topology_params: tuple[tuple[str, object], ...] = ()
    llc: str | None = None
    invariants: bool = False
    #: GA population / halving promotion factor (strategy-specific)
    population: int = 8
    eta: int = 2

    def __post_init__(self) -> None:
        REGISTRY.get(self.policy)  # raises UnknownPolicyError early
        require(self.strategy in STRATEGIES,
                f"unknown strategy {self.strategy!r}; known: "
                f"{sorted(STRATEGIES)}")
        require(self.budget >= 1, "budget must be >= 1 evaluation")
        require(len(self.workloads) >= 1, "need >= 1 workload")
        require(len(self.eval_seeds) >= 1, "need >= 1 evaluation seed")
        for w in self.workloads:
            require(w in WORKLOAD_TABLE, f"unknown workload {w!r}")


@dataclass(frozen=True)
class TuneResult:
    """A finished search: the winner plus its full trajectory."""

    config: TuneConfig
    best_params: dict
    best_score: float
    history: tuple[Evaluation, ...]
    n_evaluations: int

    def to_artifact(self) -> dict:
        """The tuned-policy JSON document (see module docstring).

        Deterministic for a fixed config: no timestamps, no cache or
        host statistics.  ``(policy, params)`` validate against the
        registry before serialisation.
        """
        REGISTRY.get(self.config.policy).validate_params(self.best_params)
        cfg = self.config
        return {
            "artifact_version": ARTIFACT_VERSION,
            "kind": "tuned-policy",
            "policy": cfg.policy,
            "params": dict(sorted(self.best_params.items())),
            "score": self.best_score,
            "objective": "mean Eqn-4 fairness across workloads x seeds",
            "strategy": cfg.strategy,
            "budget": cfg.budget,
            "seed": cfg.seed,
            "tunables": list(cfg.tunables),
            "workloads": list(cfg.workloads),
            "eval_seeds": list(cfg.eval_seeds),
            "work_scale": cfg.work_scale,
            "topology": cfg.topology,
            "topology_params": [list(kv) for kv in cfg.topology_params],
            "llc": cfg.llc,
            "history": [
                {
                    "params": dict(sorted(e.params.items())),
                    "score": e.score,
                    "scale": e.scale,
                    "round": e.round,
                }
                for e in self.history
            ],
        }

    def policy_arg(self) -> str:
        """The winner as a ``--policy name:k=v,...`` CLI argument."""
        inner = ",".join(
            f"{k}={v}" for k, v in sorted(self.best_params.items())
        )
        return f"{self.config.policy}:{inner}" if inner else self.config.policy


class Tuner:
    """Drives one search: strategy in, tuned artifact out."""

    def __init__(self, campaign, config: TuneConfig, log=None) -> None:
        import numpy as np

        self.campaign = campaign
        self.config = config
        self.space = SearchSpace.for_policy(config.policy, config.tunables)
        self.log = log or (lambda msg: None)
        self._rng = np.random.default_rng(config.seed)
        #: (point key, scale) -> score; distinct entries = budget spent
        self._scores: dict[tuple, float] = {}

    # --------------------------------------------------------- evaluation

    def specs_for(self, point: dict, scale: float | None = None) -> list:
        """The candidate's evaluation cells, as `ExperimentSpec`s."""
        cfg = self.config
        policy = PolicyRef.of(cfg.policy, point)
        topology = TopologyRef.of(cfg.topology, dict(cfg.topology_params))
        return [
            ExperimentSpec(
                workload=_workload_ref(wl),
                policy=policy,
                topology=topology,
                seed=seed,
                work_scale=cfg.work_scale if scale is None else scale,
                llc=cfg.llc,
                invariants=cfg.invariants,
            )
            for wl in cfg.workloads
            for seed in cfg.eval_seeds
        ]

    def evaluate(self, point: dict, scale: float | None = None) -> float:
        """Objective at one point: mean Eqn. 4 fairness over all cells.

        Memoised by (point, scale) — revisits are free for the strategy
        *and* for the campaign (content-addressed cache hits).
        """
        key = (self.space.key(point), scale)
        if key in self._scores:
            return self._scores[key]
        results = self.campaign.gather(self.specs_for(point, scale))
        scores = []
        for res in results:
            value = fairness(res)
            scores.append(
                value if math.isfinite(value) else _FAILED_SCORE
            )
        score = float(sum(scores) / len(scores))
        self._scores[key] = score
        return score

    # ------------------------------------------------------------- search

    def run(self) -> TuneResult:
        cfg = self.config
        strategy = self._make_strategy()
        if cfg.strategy == "halving":
            history = strategy.run(
                self.space, self.evaluate, cfg.budget, self._rng,
                log=self.log, full_scale=cfg.work_scale,
            )
        else:
            history = strategy.run(
                self.space, self.evaluate, cfg.budget, self._rng,
                log=self.log,
            )
        require(len(history) >= 1, "the search evaluated no candidates")
        # The winner must hold at *full* scale: prefer full-scale
        # evaluations (every GA entry; halving's last rung), falling
        # back to the best anywhere only if none exist.
        full = [e for e in history if e.scale is None]
        best = max(full or history, key=lambda e: e.score)
        return TuneResult(
            config=cfg,
            best_params=dict(best.params),
            best_score=best.score,
            history=tuple(history),
            n_evaluations=len(self._scores),
        )

    def _make_strategy(self):
        cfg = self.config
        if cfg.strategy == "ga":
            return STRATEGIES["ga"](population=cfg.population)
        return STRATEGIES["halving"](
            eta=cfg.eta, quick_scale=cfg.quick_scale
        )


def _workload_ref(name: str):
    from repro.campaign.spec import WorkloadRef

    return WorkloadRef.from_spec(workload(name))
