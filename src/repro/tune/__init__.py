"""Offline self-tuning: search-based parameter optimization over the
campaign backend (``repro tune``).

The paper's Optimizer (§III-F) nudges ⟨swapSize, quantaLength⟩ one step
per quantum *inside* a run; this subsystem searches the full
⟨swap_size, quanta_length_s, fairness_threshold⟩ space **offline**,
evaluating every candidate as a batch of `repro.spec.ExperimentSpec`s
through `Campaign.gather` — so repeated points are content-addressed
cache hits, interrupted searches resume from the cache, and the whole
search is deterministic for a fixed ``--seed`` + budget.

Layers:

* :mod:`repro.tune.space` — the search space, derived from the policy's
  declarative `ParamSpec` schema (bounds enforced, validate-never-coerce);
* :mod:`repro.tune.strategies` — pluggable search strategies: a seeded
  genetic algorithm (tournament selection, uniform crossover, bounded
  mutation) and successive halving (promote survivors from quick-scale
  to full-scale evaluation);
* :mod:`repro.tune.driver` — the `Tuner`: candidate evaluation through a
  campaign, the Eqn. 4 fairness objective, and the tuned-policy JSON
  artifact;
* :mod:`repro.tune.report` — tuned-static vs paper-adaptive vs
  default-static comparison across the workload suite.

See docs/tuning.md.
"""

from repro.tune.driver import TuneConfig, TuneResult, Tuner
from repro.tune.report import build_tuning_report
from repro.tune.space import SearchSpace
from repro.tune.strategies import (
    STRATEGIES,
    GAStrategy,
    SuccessiveHalvingStrategy,
)

__all__ = [
    "TuneConfig",
    "TuneResult",
    "Tuner",
    "SearchSpace",
    "STRATEGIES",
    "GAStrategy",
    "SuccessiveHalvingStrategy",
    "build_tuning_report",
]
