"""Pluggable search strategies over a `SearchSpace`.

A strategy is a pure search loop: it proposes points and consumes
scores through the ``evaluate`` callback the driver hands it —
``evaluate(point, scale)`` returns the objective at the given work
scale (``None`` = the campaign's full scale) and is memoised by the
driver, so strategies may re-visit points freely; only *distinct*
``(point, scale)`` evaluations consume budget.

Both strategies draw all randomness from one seeded
``np.random.Generator`` with a deterministic call order, making the
whole search — and hence the emitted artifact — reproducible for a
fixed seed + budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tune.space import SearchSpace
from repro.util.validation import require

__all__ = [
    "Evaluation",
    "GAStrategy",
    "SuccessiveHalvingStrategy",
    "STRATEGIES",
]


@dataclass(frozen=True)
class Evaluation:
    """One scored candidate, as recorded in the artifact's history."""

    params: dict
    score: float
    scale: float | None = None  # None = the search's full work scale
    round: int = 0


class GAStrategy:
    """Seeded genetic algorithm: tournament selection, uniform
    crossover, bounded mutation within the `ParamSpec` ranges.

    Elitism keeps the best ``elite`` parents each generation; children
    are bred by tournament-of-``tournament`` selection, crossed over
    with probability ``crossover_prob`` (else cloned from the winner)
    and mutated coordinate-wise.  The loop stops when the evaluation
    budget is exhausted.
    """

    name = "ga"

    def __init__(
        self,
        population: int = 8,
        elite: int = 2,
        tournament: int = 3,
        crossover_prob: float = 0.6,
        mutation_prob: float = 0.4,
    ) -> None:
        require(population >= 2, "population must be >= 2")
        require(1 <= elite < population, "elite must be in [1, population)")
        require(tournament >= 2, "tournament must be >= 2")
        self.population = population
        self.elite = elite
        self.tournament = tournament
        self.crossover_prob = crossover_prob
        self.mutation_prob = mutation_prob

    def run(
        self,
        space: SearchSpace,
        evaluate,
        budget: int,
        rng: np.random.Generator,
        log=lambda msg: None,
    ) -> list[Evaluation]:
        history: list[Evaluation] = []

        def scored(point: dict, round_no: int) -> Evaluation:
            ev = Evaluation(
                params=point, score=evaluate(point, None), round=round_no
            )
            history.append(ev)
            return ev

        # Seed generation: distinct samples up to the population size.
        seen: set[tuple] = set()
        pop: list[Evaluation] = []
        attempts = 0
        while len(pop) < min(self.population, budget) and attempts < 50 * self.population:
            point = space.sample(rng)
            attempts += 1
            if space.key(point) in seen:
                continue
            seen.add(space.key(point))
            pop.append(scored(point, 0))
        pop.sort(key=lambda e: e.score, reverse=True)
        log(
            f"generation 0: best {pop[0].score:.4f} {pop[0].params}"
            if pop else "empty seed generation"
        )

        round_no = 0
        while len(history) < budget and pop:
            round_no += 1
            parents = pop[: self.population]
            children: list[dict] = []
            while (
                len(children) < self.population - self.elite
                and len(history) + len(children) < budget
            ):
                a = self._tournament(parents, rng)
                b = self._tournament(parents, rng)
                if rng.random() < self.crossover_prob:
                    child = space.crossover(a.params, b.params, rng)
                else:
                    child = dict(a.params)
                child = space.mutate(child, rng, self.mutation_prob)
                children.append(child)
            if not children:
                break
            evaluated = [scored(c, round_no) for c in children]
            pop = sorted(
                parents[: self.elite] + evaluated,
                key=lambda e: e.score,
                reverse=True,
            )
            log(f"generation {round_no}: best {pop[0].score:.4f} {pop[0].params}")
        return history

    def _tournament(
        self, parents: list[Evaluation], rng: np.random.Generator
    ) -> Evaluation:
        k = min(self.tournament, len(parents))
        picks = rng.choice(len(parents), size=k, replace=False)
        return max((parents[int(i)] for i in picks), key=lambda e: e.score)


class SuccessiveHalvingStrategy:
    """Successive halving: a wide cohort at ``--quick``-scale, the top
    ``1/eta`` promoted up a geometric work-scale ladder to full scale.

    The rung ladder runs ``quick_scale * eta^i`` up to the search's full
    work scale; the initial cohort size is chosen so the whole schedule
    fits the evaluation budget.  Cheap rungs disqualify bad regions of
    the space early; only survivors pay for full-scale evaluation.
    """

    name = "halving"

    def __init__(self, eta: int = 2, quick_scale: float = 0.05) -> None:
        require(eta >= 2, "eta must be >= 2")
        require(quick_scale > 0.0, "quick_scale must be > 0")
        self.eta = eta
        self.quick_scale = quick_scale

    def ladder(self, full_scale: float) -> list[float | None]:
        """Work-scale rungs, smallest first; ``None`` = full scale."""
        rungs: list[float | None] = []
        scale = min(self.quick_scale, full_scale)
        while scale < full_scale:
            rungs.append(round(scale, 6))
            scale *= self.eta
        rungs.append(None)
        return rungs

    def run(
        self,
        space: SearchSpace,
        evaluate,
        budget: int,
        rng: np.random.Generator,
        log=lambda msg: None,
        full_scale: float = 1.0,
    ) -> list[Evaluation]:
        rungs = self.ladder(full_scale)
        # Choose the cohort so sum(n0 / eta^i) over rungs <= budget.
        weight = sum(self.eta ** -i for i in range(len(rungs)))
        n0 = max(int(budget / weight), 1)
        history: list[Evaluation] = []

        cohort: list[dict] = []
        seen: set[tuple] = set()
        attempts = 0
        while len(cohort) < n0 and attempts < 50 * n0:
            point = space.sample(rng)
            attempts += 1
            if space.key(point) in seen:
                continue
            seen.add(space.key(point))
            cohort.append(point)

        for i, scale in enumerate(rungs):
            if not cohort or len(history) >= budget:
                break
            room = budget - len(history)
            cohort = cohort[:room]
            evaluated = []
            for point in cohort:
                ev = Evaluation(
                    params=point,
                    score=evaluate(point, scale),
                    scale=scale,
                    round=i,
                )
                history.append(ev)
                evaluated.append(ev)
            evaluated.sort(key=lambda e: e.score, reverse=True)
            label = "full" if scale is None else f"{scale:g}"
            log(
                f"rung {i} (scale {label}): {len(evaluated)} configs, "
                f"best {evaluated[0].score:.4f} {evaluated[0].params}"
            )
            keep = max(len(evaluated) // self.eta, 1)
            if scale is None:
                break
            cohort = [e.params for e in evaluated[:keep]]
        return history


#: Registry of strategy constructors for the CLI's ``--strategy`` flag.
STRATEGIES = {
    GAStrategy.name: GAStrategy,
    SuccessiveHalvingStrategy.name: SuccessiveHalvingStrategy,
}
