"""The tuning report: tuned-static vs paper-adaptive vs default-static.

Answers the ROADMAP's question — does an *offline-searched static*
configuration beat the paper's *online-adaptive* one? — by evaluating a
set of policy entries over the same workload suite × seeds through one
``Campaign.gather`` (so the tuned artifact's own evaluations are cache
hits, and baselines are shared with any earlier campaign at the same
scale):

* ``tuned-static`` — the searched policy pinned to the artifact's
  winning parameters;
* ``default-static`` — the same policy at registry defaults (for
  ``dike``: no online adaptation, the paper's fixed configuration);
* ``paper-adaptive`` — ``dike-af``, the paper's fairness-adaptive mode
  (§III-F Optimizer active);
* any further comparison policies (e.g. ``dike-lms``) at defaults.

Per entry the report records Eqn. 4 fairness per workload (averaged
over seeds) and the suite mean; the ``ranking`` lists entries best
first.  Deterministic: no timestamps, no cache statistics.
"""

from __future__ import annotations

import math

from repro.metrics.fairness import fairness
from repro.policies import REGISTRY
from repro.spec import ExperimentSpec, PolicyRef, TopologyRef
from repro.tune.driver import TuneConfig
from repro.util.validation import require
from repro.workloads.suite import workload

__all__ = ["REPORT_VERSION", "DEFAULT_COMPARISONS", "build_tuning_report"]

#: Version stamp of the tuning-report document.
REPORT_VERSION = 1

#: The ROADMAP comparison: the paper's adaptive mode plus the LMS
#: predictor variant, next to the tuned/default static entries.
DEFAULT_COMPARISONS: tuple[str, ...] = ("dike-af", "dike-lms")


def build_tuning_report(
    campaign,
    config: TuneConfig,
    tuned_params: dict,
    comparisons: tuple[str, ...] = DEFAULT_COMPARISONS,
) -> dict:
    """Evaluate every entry over the config's suite and rank them."""
    REGISTRY.get(config.policy).validate_params(tuned_params)
    entries: list[tuple[str, PolicyRef]] = [
        ("tuned-static", PolicyRef.of(config.policy, tuned_params)),
        ("default-static", PolicyRef.of(config.policy)),
    ]
    for name in comparisons:
        label = "paper-adaptive" if name == "dike-af" else name
        entries.append((label, PolicyRef.of(name)))
    labels = [label for label, _ in entries]
    require(len(set(labels)) == len(labels),
            f"duplicate report entries: {labels}")

    topology = TopologyRef.of(config.topology, dict(config.topology_params))
    cells = [
        (label, wl, seed)
        for label, _ in entries
        for wl in config.workloads
        for seed in config.eval_seeds
    ]
    ref_of = dict(entries)
    specs = [
        ExperimentSpec(
            workload=_workload_ref(wl),
            policy=ref_of[label],
            topology=topology,
            seed=seed,
            work_scale=config.work_scale,
            llc=config.llc,
            invariants=config.invariants,
        )
        for label, wl, seed in cells
    ]
    results = campaign.gather(specs)

    by_entry: dict[str, dict[str, list[float]]] = {
        label: {wl: [] for wl in config.workloads} for label in labels
    }
    for (label, wl, _seed), res in zip(cells, results):
        value = fairness(res)
        if math.isfinite(value):
            by_entry[label][wl].append(float(value))

    report_entries = {}
    for label, ref in entries:
        per_wl = {
            wl: (sum(v) / len(v) if v else None)
            for wl, v in by_entry[label].items()
        }
        finite = [v for v in per_wl.values() if v is not None]
        report_entries[label] = {
            "policy": ref.name,
            "params": dict(ref.params),
            "fairness_by_workload": per_wl,
            "mean_fairness": (sum(finite) / len(finite)) if finite else None,
        }
    ranking = sorted(
        labels,
        key=lambda l: (
            report_entries[l]["mean_fairness"]
            if report_entries[l]["mean_fairness"] is not None
            else float("-inf")
        ),
        reverse=True,
    )
    return {
        "report_version": REPORT_VERSION,
        "kind": "tuning-report",
        "objective": "Eqn-4 fairness (mean of per-workload values, "
                     "each averaged over seeds; higher is better)",
        "work_scale": config.work_scale,
        "workloads": list(config.workloads),
        "eval_seeds": list(config.eval_seeds),
        "topology": config.topology,
        "llc": config.llc,
        "entries": report_entries,
        "ranking": ranking,
    }


def _workload_ref(name: str):
    from repro.campaign.spec import WorkloadRef

    return WorkloadRef.from_spec(workload(name))
