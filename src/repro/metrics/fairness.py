"""The paper's Fairness metric (Eqn. 4).

For a workload of *n* benchmarks,

.. math::

    Fairness = 1 - \\frac{\\sum_{i=1}^{n} cv_i}{n}

where :math:`cv_i` is the coefficient of variation of benchmark *i*'s
homogeneous threads' execution times.  A perfectly fair system gives every
sibling thread the same runtime (cv = 0, Fairness = 1); dispersion lowers
the score.

Which benchmarks count: the paper's workloads contain four main benchmarks
plus the KMEANS contention generator.  The metric here defaults to the four
main benchmarks (KMEANS's barrier coupling forces its threads to finish
nearly together under *any* scheduler, so including it mostly dilutes the
signal); pass ``include=("...",)`` or ``include=None`` with
``exclude=()`` to override.
"""

from __future__ import annotations

import numpy as np

from repro.sim.results import RunResult
from repro.util.stats import coefficient_of_variation

__all__ = [
    "benchmark_cv",
    "fairness",
    "fairness_improvement",
    "unfairness_ratio",
]

#: Benchmarks excluded from the fairness average by default.
DEFAULT_EXCLUDE: tuple[str, ...] = ("kmeans",)


def benchmark_cv(result: RunResult, exclude: tuple[str, ...] = DEFAULT_EXCLUDE) -> dict[str, float]:
    """Per-benchmark coefficient of variation of thread runtimes
    (finish minus the instance's arrival — identical to finish times for
    closed-system runs where everything starts at t=0)."""
    out: dict[str, float] = {}
    for b in result.benchmarks:
        if b.benchmark in exclude:
            continue
        times = np.asarray(b.thread_runtimes, dtype=np.float64)
        if not np.isfinite(times).all():
            out[b.benchmark] = float("nan")  # truncated run
        else:
            out[b.benchmark] = coefficient_of_variation(times)
    return out


def fairness(result: RunResult, exclude: tuple[str, ...] = DEFAULT_EXCLUDE) -> float:
    """Eqn. 4: ``1 - mean(cv_i)`` over the workload's benchmarks."""
    cvs = list(benchmark_cv(result, exclude).values())
    if not cvs:
        return float("nan")
    return 1.0 - float(np.mean(cvs))


def fairness_improvement(
    result: RunResult,
    baseline: RunResult,
    exclude: tuple[str, ...] = DEFAULT_EXCLUDE,
) -> float:
    """Relative fairness improvement over a baseline run (the quantity in
    Figure 6a, where the baseline is Linux CFS and improvement is 0 for the
    baseline itself)."""
    f = fairness(result, exclude)
    f0 = fairness(baseline, exclude)
    if not np.isfinite(f) or not np.isfinite(f0) or f0 == 0.0:
        return float("nan")
    return (f - f0) / abs(f0)


def unfairness_ratio(
    result: RunResult, exclude: tuple[str, ...] = DEFAULT_EXCLUDE
) -> float:
    """The related-work metric: max-over-min thread runtime, worst benchmark.

    Prior work (Feliu et al., Kim et al. — the paper's refs [8, 13]) scores
    fairness as the ratio of the maximum to the minimum slowdown.  The
    paper argues this "fails to address fairness completely as it only
    considers best and worst cases"; it is implemented here so that
    critique is testable (see tests/metrics) and so results can be compared
    against ratio-reporting papers.  1.0 = perfectly fair; larger = worse.
    """
    worst = 1.0
    for b in result.benchmarks:
        if b.benchmark in exclude:
            continue
        times = np.asarray(b.thread_runtimes, dtype=np.float64)
        if not np.isfinite(times).all() or times.min() <= 0:
            return float("nan")
        worst = max(worst, float(times.max() / times.min()))
    return worst
