"""Swap/migration accounting (Table III and the overhead analysis of §IV-B)."""

from __future__ import annotations

import numpy as np

from repro.sim.results import RunResult

__all__ = ["swap_count", "swap_rate", "migration_overhead_fraction"]


def swap_count(result: RunResult) -> int:
    """Number of pairwise swaps performed during the run (Table III cells)."""
    return result.swap_count


def swap_rate(result: RunResult) -> float:
    """Swaps per simulated second."""
    if result.makespan_s <= 0 or not np.isfinite(result.makespan_s):
        return float("nan")
    return result.swap_count / result.makespan_s


def migration_overhead_fraction(
    result: RunResult, swap_overhead_s: float
) -> float:
    """Fraction of aggregate thread-time lost to migration penalties.

    A coarse upper bound: ``migrations x swapOH`` over the summed thread
    runtimes — the quantity Dike's predictor tries to keep small.
    """
    total_thread_time = sum(
        t for b in result.benchmarks for t in b.thread_finish_times if np.isfinite(t)
    )
    if total_thread_time <= 0:
        return float("nan")
    return result.migration_count * swap_overhead_s / total_thread_time
