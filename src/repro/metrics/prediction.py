"""Prediction-accuracy metrics for Dike's closed-loop model (Figures 7/8).

The paper defines prediction error as the relative difference between the
predicted and actual memory access rate of a swapped thread one quantum
after the prediction; positive = overestimate.  Figure 7 reports the
min/avg/max per workload, Figure 8 the error's time series.
"""

from __future__ import annotations

import numpy as np

from repro.sim.results import PredictionRecord, RunResult

__all__ = [
    "prediction_errors",
    "error_summary",
    "error_series",
]


def prediction_errors(result: RunResult, min_threads: int = 10) -> np.ndarray:
    """Per-quantum relative prediction error.

    The paper's error is "the average difference between predicted and
    actual memory access of the running threads", evaluated each quantum:
    the aggregate signed difference across threads normalised by the
    aggregate actual access — i.e. how far off, relatively, the scheduler's
    picture of the quantum's memory traffic was.  (Normalising each thread
    separately would let a thread whose burst just ended register a
    +900 % error against a near-zero denominator, which no scheduler
    decision actually depends on.)  Figure 7 reports the min/avg/max of
    this per-quantum series over the run; Figure 8 plots the series.

    ``min_threads`` drops quanta with too few running threads (the tail of
    a run, where one departing thread swings the aggregate arbitrarily —
    the paper observes the same post-completion fluctuation in Figure 8).
    """
    diff: dict[int, float] = {}
    actual: dict[int, float] = {}
    count: dict[int, int] = {}
    for r in result.predictions:
        if r.actual_rate > 0.0 and np.isfinite(r.predicted_rate):
            q = r.quantum_index
            diff[q] = diff.get(q, 0.0) + (r.predicted_rate - r.actual_rate)
            actual[q] = actual.get(q, 0.0) + r.actual_rate
            count[q] = count.get(q, 0) + 1
    quanta = [
        q for q in sorted(diff) if actual[q] > 0.0 and count[q] >= min_threads
    ]
    if not quanta:
        return np.zeros(0)
    return np.array([diff[q] / actual[q] for q in quanta], dtype=np.float64)


def error_summary(result: RunResult, min_threads: int = 10) -> dict[str, float]:
    """Figure 7's per-workload statistics: min / mean / max (and count)."""
    errors = prediction_errors(result, min_threads=min_threads)
    if errors.size == 0:
        nan = float("nan")
        return {"min": nan, "mean": nan, "max": nan, "n": 0}
    return {
        "min": float(errors.min()),
        "mean": float(errors.mean()),
        "max": float(errors.max()),
        "n": int(errors.size),
    }


def error_series(
    result: RunResult, bucket_s: float = 1.0
) -> tuple[np.ndarray, np.ndarray]:
    """Figure 8's time series: aggregate-relative error per time bucket.

    Returns ``(bucket_start_times, error)`` with NaN for empty buckets;
    the error definition matches :func:`prediction_errors`.
    """
    records: tuple[PredictionRecord, ...] = result.predictions
    if not records:
        return np.zeros(0), np.zeros(0)
    valid = [
        r for r in records if r.actual_rate > 0.0 and np.isfinite(r.predicted_rate)
    ]
    if not valid:
        return np.zeros(0), np.zeros(0)
    times = np.array([r.time_s for r in valid])
    diffs = np.array([r.predicted_rate - r.actual_rate for r in valid])
    actuals = np.array([r.actual_rate for r in valid])
    t_end = times.max() + bucket_s
    edges = np.arange(0.0, t_end + bucket_s, bucket_s)
    idx = np.clip(np.digitize(times, edges) - 1, 0, len(edges) - 2)
    out = np.full(len(edges) - 1, np.nan)
    for b in np.unique(idx):
        sel = idx == b
        denom = actuals[sel].sum()
        if denom > 0:
            out[b] = diffs[sel].sum() / denom
    return edges[:-1], out
