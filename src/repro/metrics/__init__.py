"""Evaluation metrics: fairness (Eqn. 4), speedup, swaps, prediction error."""

from repro.metrics.fairness import (
    DEFAULT_EXCLUDE,
    benchmark_cv,
    fairness,
    fairness_improvement,
    unfairness_ratio,
)
from repro.metrics.performance import (
    benchmark_speedups,
    makespan_speedup,
    speedup,
)
from repro.metrics.prediction import error_series, error_summary, prediction_errors
from repro.metrics.swaps import migration_overhead_fraction, swap_count, swap_rate

__all__ = [
    "DEFAULT_EXCLUDE",
    "benchmark_cv",
    "fairness",
    "fairness_improvement",
    "unfairness_ratio",
    "benchmark_speedups",
    "makespan_speedup",
    "speedup",
    "error_series",
    "error_summary",
    "prediction_errors",
    "migration_overhead_fraction",
    "swap_count",
    "swap_rate",
]
