"""Performance metrics: speedup over a baseline run.

The paper reports each workload's *speedup over baseline* (Figure 6b, CFS
= 1.0).  Because Dike is a fairness scheduler, benchmark-level runtimes are
the natural unit: a benchmark finishes when its slowest thread does, so
equalising sibling runtimes directly shortens benchmark completion.  The
headline number is the geometric mean over the workload's benchmarks of

.. math::

    speedup_i = \\frac{T_i^{baseline}}{T_i^{policy}}

with the workload **makespan speedup** also exposed for cross-checks.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.fairness import DEFAULT_EXCLUDE
from repro.sim.results import RunResult
from repro.util.stats import geometric_mean

__all__ = [
    "benchmark_speedups",
    "speedup",
    "makespan_speedup",
]


def benchmark_speedups(
    result: RunResult,
    baseline: RunResult,
    exclude: tuple[str, ...] = DEFAULT_EXCLUDE,
) -> dict[str, float]:
    """Per-benchmark speedup of ``result`` over ``baseline``.

    Benchmarks are matched by group id (the instances are identical builds
    of the same workload spec), with the name kept for reporting.
    """
    base_by_group = {b.group_id: b for b in baseline.benchmarks}
    out: dict[str, float] = {}
    for b in result.benchmarks:
        if b.benchmark in exclude:
            continue
        base = base_by_group.get(b.group_id)
        if base is None or base.benchmark != b.benchmark:
            raise ValueError(
                f"baseline run does not contain group {b.group_id} "
                f"({b.benchmark}); are the runs from the same workload?"
            )
        t, t0 = b.runtime, base.runtime
        out[b.benchmark] = (
            t0 / t if np.isfinite(t) and np.isfinite(t0) and t > 0 else float("nan")
        )
    return out


def speedup(
    result: RunResult,
    baseline: RunResult,
    exclude: tuple[str, ...] = DEFAULT_EXCLUDE,
) -> float:
    """Geometric-mean benchmark speedup over the baseline (Figure 6b)."""
    values = [v for v in benchmark_speedups(result, baseline, exclude).values()
              if np.isfinite(v)]
    if not values:
        return float("nan")
    return geometric_mean(values)


def makespan_speedup(result: RunResult, baseline: RunResult) -> float:
    """Whole-workload makespan ratio (baseline / policy)."""
    if result.makespan_s <= 0 or not np.isfinite(result.makespan_s):
        return float("nan")
    return baseline.makespan_s / result.makespan_s
