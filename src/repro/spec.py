"""The unified experiment specification layer.

One declarative, composable surface for "an experiment":

    ExperimentSpec = ⟨ policy name+params, topology name+params,
                       simulator overrides, workload/traffic ref ⟩

Every run — CLI verbs, campaign grids, traffic campaigns, the tuner —
describes work as an :class:`ExperimentSpec` (or something convertible
to one).  The spec has exactly **one validation path**: policy
parameters check against :data:`repro.policies.REGISTRY`'s declarative
`ParamSpec` schemas, topology parameters against
:data:`repro.topologies.TOPOLOGY_REGISTRY`, and simulator fields
through :class:`repro.campaign.SimParams` — validate-never-coerce, so
the values a caller supplies are the values that get hashed and run.

Serialization is **canonical and schema-versioned**
(:meth:`ExperimentSpec.to_dict` / :meth:`ExperimentSpec.from_dict`),
and the campaign cache key of a spec is *defined* as the cache key of
its legacy :class:`~repro.campaign.TaskSpec` image
(:meth:`ExperimentSpec.to_task`): every spec expressible before this
layer existed keeps its byte-identical content address, so historical
object stores stay warm.

`PolicyRef` / `TopologyRef` also own the CLI grammar
(``name[:key=value,...]``) via :meth:`PolicyRef.from_arg` — the same
parser the ``--policy`` and ``--topology`` flags use.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping

from repro.campaign.spec import SimParams, TaskSpec, WorkloadRef
from repro.policies import REGISTRY, PolicySpec
from repro.topologies import TOPOLOGY_REGISTRY, TopologySpec, parse_topology_arg
from repro.util.rng import DEFAULT_SEED
from repro.util.validation import require
from repro.workloads.suite import WorkloadSpec

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "PolicyRef",
    "TopologyRef",
    "ExperimentSpec",
]

#: Version stamp of the :meth:`ExperimentSpec.to_dict` wire form.  Bump
#: only on a breaking change to the serialized layout; readers reject
#: unknown versions instead of guessing.
SPEC_SCHEMA_VERSION = 1


def _sorted_params(params: Mapping[str, Any] | Iterable[tuple[str, Any]] | None):
    if params is None:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    return tuple(sorted(items))


@dataclass(frozen=True)
class PolicyRef:
    """A policy by registry name plus a validated parameterisation.

    Parameters are validated against the policy's declarative
    `ParamSpec` schema at construction (unknown names raise
    ``UnknownPolicyError``, out-of-bounds values ``ValueError``) but
    stored **raw** — the campaign cache key hashes exactly the supplied
    values, never a coerced form.
    """

    name: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        spec = REGISTRY.get(self.name)
        spec.validate_params(dict(self.params))
        object.__setattr__(self, "params", _sorted_params(self.params))

    @classmethod
    def of(cls, name: str, params: Mapping[str, Any] | None = None) -> "PolicyRef":
        return cls(name=name, params=_sorted_params(params))

    @classmethod
    def from_arg(cls, arg: str) -> "PolicyRef":
        """Parse the CLI grammar ``name[:key=value,...]``."""
        name, params = parse_topology_arg(arg)
        return cls.of(name, params)

    @property
    def spec(self) -> PolicySpec:
        return REGISTRY.get(self.name)

    def build(self):
        """Instantiate the (stateful) scheduler this ref describes."""
        return REGISTRY.build(self.name, dict(self.params))

    def with_params(self, **overrides: Any) -> "PolicyRef":
        """A new ref with ``overrides`` merged over the current params."""
        merged = dict(self.params)
        merged.update(overrides)
        return PolicyRef.of(self.name, merged)

    def to_dict(self) -> dict:
        return {"name": self.name, "params": [[k, v] for k, v in self.params]}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "PolicyRef":
        return cls.of(d["name"], {k: v for k, v in d.get("params", ())})

    def describe(self) -> str:
        if not self.params:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.name}:{inner}"


@dataclass(frozen=True)
class TopologyRef:
    """A machine by topology-registry name plus a validated
    parameterisation (same contract as :class:`PolicyRef`)."""

    name: str = "heterogeneous"
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        spec = TOPOLOGY_REGISTRY.get(self.name)
        spec.validate_params(dict(self.params))
        object.__setattr__(self, "params", _sorted_params(self.params))

    @classmethod
    def of(cls, name: str, params: Mapping[str, Any] | None = None) -> "TopologyRef":
        return cls(name=name, params=_sorted_params(params))

    @classmethod
    def from_arg(cls, arg: str) -> "TopologyRef":
        """Parse the CLI grammar ``name[:key=value,...]``."""
        name, params = parse_topology_arg(arg)
        return cls.of(name, params)

    @property
    def spec(self) -> TopologySpec:
        return TOPOLOGY_REGISTRY.get(self.name)

    def build(self):
        return TOPOLOGY_REGISTRY.build(self.name, dict(self.params))

    def with_params(self, **overrides: Any) -> "TopologyRef":
        merged = dict(self.params)
        merged.update(overrides)
        return TopologyRef.of(self.name, merged)

    def to_dict(self) -> dict:
        return {"name": self.name, "params": [[k, v] for k, v in self.params]}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TopologyRef":
        return cls.of(d["name"], {k: v for k, v in d.get("params", ())})

    def describe(self) -> str:
        if not self.params:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.name}:{inner}"


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment, fully declaratively: who runs what, where, how.

    Composes a :class:`~repro.campaign.WorkloadRef` (closed suite
    workload or open-loop traffic trace by value), a :class:`PolicyRef`,
    a :class:`TopologyRef` and the flat simulator overrides that
    previously hid inside ``SimParams``.  Frozen, picklable, JSON-able;
    the tuner mutates specs through :meth:`with_policy_params` /
    ``dataclasses.replace``.
    """

    workload: WorkloadRef
    policy: PolicyRef
    topology: TopologyRef = TopologyRef()
    seed: int = DEFAULT_SEED
    work_scale: float = 1.0
    counter_noise: float = 0.06
    max_time_s: float = 36_000.0
    record_timeseries: bool = False
    migration: tuple[float, float, float] | None = None
    llc: str | None = None
    invariants: bool = False
    traffic: bool = False

    def __post_init__(self) -> None:
        # One validation path: policy/topology refs validated themselves;
        # the simulator fields validate by construction of the SimParams
        # image (llc backend name, topology/params compatibility).
        self.sim_params()
        if self.migration is not None:
            require(
                len(self.migration) == 3,
                "migration override is a (swap_overhead_s, warmup_work, "
                "warmup_miss_scale) triple",
            )

    # -- constructors -------------------------------------------------

    @classmethod
    def for_workload(
        cls,
        spec: WorkloadSpec,
        policy: str | PolicyRef,
        seed: int = DEFAULT_SEED,
        policy_params: Mapping[str, Any] | None = None,
        sim: SimParams | None = None,
        invariants: bool = False,
    ) -> "ExperimentSpec":
        """The usual constructor: from a live closed-system `WorkloadSpec`.

        Accepts the same shape as the legacy ``TaskSpec.for_workload``
        (optional ``sim=SimParams(...)`` bundle) so migrated call sites
        stay one-line changes.
        """
        ref = policy if isinstance(policy, PolicyRef) else PolicyRef.of(policy, policy_params)
        if policy_params and isinstance(policy, PolicyRef):
            ref = ref.with_params(**dict(policy_params))
        return cls(
            workload=WorkloadRef.from_spec(spec),
            policy=ref,
            seed=seed,
            invariants=invariants,
            **cls._fields_from_sim(sim or SimParams()),
        )

    @classmethod
    def for_traffic(
        cls,
        workload,
        policy: str | PolicyRef,
        seed: int = DEFAULT_SEED,
        policy_params: Mapping[str, Any] | None = None,
        sim: SimParams | None = None,
        invariants: bool = False,
    ) -> "ExperimentSpec":
        """An open-loop spec from a live `repro.traffic.TrafficWorkload`."""
        ref = policy if isinstance(policy, PolicyRef) else PolicyRef.of(policy, policy_params)
        if policy_params and isinstance(policy, PolicyRef):
            ref = ref.with_params(**dict(policy_params))
        return cls(
            workload=WorkloadRef.from_traffic(workload),
            policy=ref,
            seed=seed,
            invariants=invariants,
            traffic=True,
            **cls._fields_from_sim(sim or SimParams()),
        )

    @staticmethod
    def _fields_from_sim(sim: SimParams) -> dict:
        return {
            "topology": TopologyRef.of(sim.topology, dict(sim.topology_params)),
            "work_scale": sim.work_scale,
            "counter_noise": sim.counter_noise,
            "max_time_s": sim.max_time_s,
            "record_timeseries": sim.record_timeseries,
            "migration": sim.migration,
            "llc": sim.llc,
        }

    # -- conversions ---------------------------------------------------

    def sim_params(self) -> SimParams:
        """The simulator-parameter bundle this spec's flat fields encode."""
        return SimParams(
            work_scale=self.work_scale,
            topology=self.topology.name,
            counter_noise=self.counter_noise,
            max_time_s=self.max_time_s,
            record_timeseries=self.record_timeseries,
            migration=self.migration,
            llc=self.llc,
            topology_params=self.topology.params,
        )

    def to_task(self) -> TaskSpec:
        """The legacy campaign `TaskSpec` image of this spec.

        This is the **cache-key-defining** conversion: the campaign
        layer hashes ``to_task().to_dict()``, so any spec expressible
        before the `ExperimentSpec` migration keeps its byte-identical
        content address.
        """
        return TaskSpec(
            workload=self.workload,
            policy=self.policy.name,
            seed=self.seed,
            policy_params=self.policy.params,
            sim=self.sim_params(),
            invariants=self.invariants,
            traffic=self.traffic,
        )

    @classmethod
    def from_task(cls, task: TaskSpec) -> "ExperimentSpec":
        """Lift a legacy `TaskSpec` into the composable form."""
        return cls(
            workload=task.workload,
            policy=PolicyRef(name=task.policy, params=task.policy_params),
            seed=task.seed,
            invariants=task.invariants,
            traffic=task.traffic,
            **cls._fields_from_sim(task.sim),
        )

    # -- mutation helpers (the tuner's surface) ------------------------

    def with_policy_params(self, **overrides: Any) -> "ExperimentSpec":
        """A new spec with ``overrides`` merged into the policy params."""
        return replace(self, policy=self.policy.with_params(**overrides))

    def with_seed(self, seed: int) -> "ExperimentSpec":
        return replace(self, seed=seed)

    def with_scale(self, work_scale: float) -> "ExperimentSpec":
        return replace(self, work_scale=work_scale)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """Schema-versioned, round-trippable wire form.

        Distinct from the cache-key fingerprint (which stays the legacy
        ``TaskSpec`` canonical dict for address stability): this form is
        for artifacts — tuned-spec JSON, plans, reports.
        """
        out: dict[str, Any] = {
            "spec_version": SPEC_SCHEMA_VERSION,
            "workload": self.workload.to_dict(),
            "policy": self.policy.to_dict(),
            "topology": self.topology.to_dict(),
            "seed": self.seed,
            "work_scale": self.work_scale,
            "counter_noise": self.counter_noise,
            "max_time_s": self.max_time_s,
            "record_timeseries": self.record_timeseries,
            "migration": list(self.migration) if self.migration else None,
            "llc": self.llc,
            "invariants": self.invariants,
            "traffic": self.traffic,
        }
        return out

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ExperimentSpec":
        version = d.get("spec_version")
        require(
            version == SPEC_SCHEMA_VERSION,
            f"unsupported ExperimentSpec schema version {version!r} "
            f"(this build reads version {SPEC_SCHEMA_VERSION})",
        )
        wl = d["workload"]
        migration = d.get("migration")
        return cls(
            workload=WorkloadRef(
                name=wl["name"],
                apps=tuple(wl["apps"]),
                include_kmeans=wl.get("include_kmeans", True),
                threads_per_app=wl.get("threads_per_app", 8),
                arrivals=tuple(wl.get("arrivals", ())),
                sizes=tuple(wl.get("sizes", ())),
            ),
            policy=PolicyRef.from_dict(d["policy"]),
            topology=TopologyRef.from_dict(d["topology"]),
            seed=d["seed"],
            work_scale=d.get("work_scale", 1.0),
            counter_noise=d.get("counter_noise", 0.06),
            max_time_s=d.get("max_time_s", 36_000.0),
            record_timeseries=d.get("record_timeseries", False),
            migration=tuple(migration) if migration else None,
            llc=d.get("llc"),
            invariants=d.get("invariants", False),
            traffic=d.get("traffic", False),
        )

    # -- identity ------------------------------------------------------

    def cache_key(self) -> str:
        """The campaign content address of this spec (see `to_task`)."""
        from repro.campaign.cachekey import cache_key

        return cache_key(self.to_task())

    def label(self) -> str:
        """Short human-readable id (same form the campaign layer prints)."""
        return self.to_task().label()
