"""Command-line interface: ``dike-repro`` / ``python -m repro``.

Subcommands
-----------
``list``
    Show all regenerable experiments.
``policies [--json|--names|--check]``
    Show every registered policy with its parameter schema, defaults and
    invariant contract (the `repro.policies` registry); ``--check``
    validates the registry itself (factories build, contracts resolve)
    and exits 1 on drift — the CI policy-matrix gate.
``topologies [--json|--names|--check]``
    Show every registered machine preset with its parameter schema and
    shape (the `repro.topologies` registry); ``--check`` validates the
    registry (factories build, socket tables consistent, aliases
    resolve) and exits 1 on drift — the CI scaling-smoke gate.
``run <experiment-id> [--scale S] [--seed N]``
    Regenerate one table/figure and print its plain-text render.
``compare <workload> [--scale S] [--seed N]``
    Run the five standard policies on one workload and print a summary.
``report [--scale S] [--seed N]``
    Run the full Figure 6 evaluation and print the shape-checklist report.
``replicate <workload> [--seeds N] [--scale S]``
    Multi-seed robustness summary of the five policies on one workload.
``timeline <workload> <policy> [--scale S]``
    ASCII placement timeline + swap-activity sparkline for one run.
``all [--scale S] [--seed N]``
    Regenerate every experiment (the full evaluation; slow at scale 1.0).
``campaign [--workloads ...] [--policies ...] [--sweep] [--workers N] ...``
    Run an experiment grid through the campaign subsystem: parallel
    workers, content-addressed result cache, retries, telemetry.  A rerun
    resumes from the cache (``--dry-run`` shows the plan without running).
``trace <workload> [--policy P] [--trace-out T.jsonl] [--chrome T.json] ...``
    Run one workload with full observability (wired via
    ``repro.obs.attach``): structured JSONL event trace, Chrome
    ``trace_event`` export (open in chrome://tracing), live invariant
    checking against the policy's contract and a metrics summary.
``trace-diff <a.jsonl> <b.jsonl> [--json]``
    Align two traces end-to-end (LCS over quantum groups) and report
    *every* divergent region with per-event-kind counts and a field-level
    drill-down — the determinism debugging tool.  Exit 0 identical,
    1 divergent, 2 on error (including mismatched trace schema versions).
    ``--json`` prints the structured `DivergenceReport` document.
``bench [--quick] [--out B.json] [--baseline B.json] [--threshold F]``
    Measure engine throughput (quanta/second) over the tracked benchmark
    suite (`repro.benchmarking`).  With ``--baseline`` the run fails
    (exit 1) if any case regresses beyond the threshold — the CI
    perf-smoke gate against the committed ``BENCH_engine.json``.
``traffic [--processes P,..] [--rate R,..] [--policy P,..] [--jobs N] ...``
    Open-loop load sweeps (`repro.traffic`): cross arrival processes ×
    rates × policies, run each cell through the campaign subsystem
    (cached, parallel) and report p50/p95/p99 job slowdown, throughput
    and queue depth per cell.  ``--out`` writes the JSON report,
    ``--emit-traces DIR`` additionally writes each generated job trace.
``tune [--strategy ga|halving] [--budget N] [--search-seed N] ...``
    Offline parameter search (`repro.tune`): optimise a policy's
    ⟨swap_size, quanta_length_s, θ_f⟩ (or ``--tunables``) for mean
    Eqn. 4 fairness, every candidate evaluated through the campaign
    cache (reruns resume; same ``--search-seed`` + budget ⇒ identical
    artifact).  Writes a tuned-policy JSON artifact (``--out``) and
    optionally the tuned-static vs paper-adaptive vs default-static
    comparison report (``--report``).  See docs/tuning.md.

Shared flags (see docs/README.md): ``run``/``report``/``all``/
``campaign``/``bench``/``trace`` uniformly accept ``--quick`` (smoke
settings), ``--workers``, ``--cache-dir``, ``--trace-out`` and
``--invariants``; ``run``/``timeline``/``trace``/``campaign``/
``traffic``/``bench`` additionally accept ``--topology
NAME[:K=V,...]``, resolved through the topology registry (``repro
topologies`` lists the presets).  Verbs that always run in-process
(``bench``, ``trace``) note ignored backend flags on stderr rather than
erroring, and the paper-pinned experiment verbs (``run``) likewise note
a non-default ``--topology`` instead of failing.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Mapping

from repro.experiments.registry import EXPERIMENTS, list_experiments, run_experiment
from repro.experiments.runner import run_policies
from repro.metrics.fairness import fairness
from repro.metrics.performance import speedup
from repro.util.rng import DEFAULT_SEED
from repro.util.tables import format_table
from repro.workloads.suite import WORKLOAD_TABLE, workload

__all__ = ["main", "build_parser"]

#: Default location of the on-disk campaign cache.
DEFAULT_CACHE_DIR = ".campaign"


#: --quick scales runs down to this work scale (except ``bench``, where
#: it selects the smoke benchmark subset instead).
QUICK_SCALE = 0.05


def _common_parent() -> argparse.ArgumentParser:
    """Shared run-shape flags: every simulating verb accepts these."""
    p = argparse.ArgumentParser(add_help=False)
    g = p.add_argument_group("common options")
    g.add_argument(
        "--scale", type=float, default=None,
        help="work scale (default: 1.0 paper-sized runs; "
             f"{QUICK_SCALE} with --quick)",
    )
    g.add_argument("--seed", type=int, default=DEFAULT_SEED)
    g.add_argument(
        "--quick", action="store_true",
        help=f"smoke settings: work scale {QUICK_SCALE} "
             "(bench: the CI smoke benchmark subset)",
    )
    return p


def _backend_parent() -> argparse.ArgumentParser:
    """Shared campaign-backend flags (uniform across the heavy verbs)."""
    p = argparse.ArgumentParser(add_help=False)
    g = p.add_argument_group("campaign backend options")
    g.add_argument(
        "--workers", type=int, default=None,
        help="parallel simulation workers (default: 2 for the campaign "
             "verb, else 1 = in-process serial)",
    )
    g.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory "
             f"(campaign verb default: {DEFAULT_CACHE_DIR})",
    )
    g.add_argument(
        "--trace-out", default=None,
        help="JSONL event-trace output: the trace file for the trace "
             "verb, a per-executed-task trace directory elsewhere",
    )
    g.add_argument(
        "--invariants", action="store_true",
        help="attach the per-policy invariant contract to every "
             "simulation (counts land in campaign telemetry)",
    )
    return p


def _topology_parent() -> argparse.ArgumentParser:
    """Shared machine-model flag, resolved via the topology registry."""
    p = argparse.ArgumentParser(add_help=False)
    g = p.add_argument_group("machine options")
    g.add_argument(
        "--topology", default="heterogeneous", metavar="NAME[:K=V,...]",
        help="machine preset from the topology registry, with optional "
             "parameter overrides (e.g. scale256 or "
             "multi-socket:n_sockets=8,smt=1); `repro topologies` lists "
             "the presets (default: heterogeneous, the paper machine)",
    )
    return p


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dike-repro",
        description=(
            "Reproduction of 'Providing Fairness in Heterogeneous Multicores "
            "with a Predictive, Adaptive Scheduler' (IPPS 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    common = _common_parent()
    backend = _backend_parent()
    machine = _topology_parent()

    sub.add_parser("list", help="list regenerable experiments")

    p_pol = sub.add_parser(
        "policies",
        help="list registered policies (schema, defaults, contracts)",
    )
    p_pol.add_argument(
        "--json", action="store_true",
        help="print the full registry as a JSON document",
    )
    p_pol.add_argument(
        "--names", action="store_true",
        help="print canonical policy names only, one per line (scripting)",
    )
    p_pol.add_argument(
        "--check", action="store_true",
        help="validate the registry (factories build, contracts resolve, "
             "schemas round-trip); exit 1 on drift",
    )
    p_pol.add_argument(
        "--tag", default=None,
        help="only show policies carrying this tag "
             "(e.g. standard, baseline, ablation, cache-aware)",
    )

    p_topo = sub.add_parser(
        "topologies",
        help="list registered machine presets (schema, shape, aliases)",
    )
    p_topo.add_argument(
        "--json", action="store_true",
        help="print the full registry as a JSON document",
    )
    p_topo.add_argument(
        "--names", action="store_true",
        help="print canonical topology names only, one per line (scripting)",
    )
    p_topo.add_argument(
        "--check", action="store_true",
        help="validate the registry (factories build, socket tables "
             "consistent, aliases resolve); exit 1 on drift",
    )
    p_topo.add_argument(
        "--tag", default=None,
        help="only show topologies carrying this tag (e.g. paper, scale)",
    )

    p_run = sub.add_parser(
        "run", help="regenerate one experiment",
        parents=[common, backend, machine],
    )
    p_run.add_argument("experiment", choices=sorted(EXPERIMENTS))

    p_cmp = sub.add_parser(
        "compare", help="compare policies on one workload", parents=[common]
    )
    p_cmp.add_argument("workload", help="wl1 .. wl16")

    p_rep = sub.add_parser(
        "report", help="full evaluation + shape checklist",
        parents=[common, backend],
    )
    p_rep.add_argument(
        "--seeds", type=int, default=1,
        help="average the evaluation over this many seeds",
    )

    p_repl = sub.add_parser(
        "replicate", help="multi-seed robustness check", parents=[common]
    )
    p_repl.add_argument("workload", help="wl1 .. wl16")
    p_repl.add_argument("--seeds", type=int, default=3, help="number of seeds")

    p_tl = sub.add_parser(
        "timeline", help="placement timeline of one run",
        parents=[common, machine],
    )
    p_tl.add_argument("workload", help="wl1 .. wl16")
    p_tl.add_argument(
        "policy", choices=sorted(_policy_choices()), help="scheduling policy"
    )

    sub.add_parser(
        "all", help="regenerate every experiment", parents=[common, backend]
    )

    p_trace = sub.add_parser(
        "trace", help="run one workload with full observability",
        parents=[common, backend, machine],
    )
    p_trace.add_argument("workload", help="wl1 .. wl16")
    p_trace.add_argument(
        "--policy", default="dike", metavar="NAME[:K=V,...]",
        help="scheduling policy with optional parameter overrides "
             "(e.g. dike-hier:n_clusters=1); `repro policies` lists the "
             "registry (default: dike)",
    )
    p_trace.add_argument(
        "--out", default=None,
        help="alias of --trace-out (default: trace.jsonl)",
    )
    p_trace.add_argument(
        "--chrome", default=None,
        help="also export a Chrome trace_event JSON to this path",
    )
    p_trace.add_argument(
        "--max-bytes", type=int, default=None,
        help="rotate the JSONL file beyond this size (default: never)",
    )
    p_trace.add_argument(
        "--no-invariants", action="store_true",
        help="skip runtime invariant checking",
    )
    p_trace.add_argument(
        "--strict", action="store_true",
        help="abort on the first invariant violation",
    )
    p_trace.add_argument(
        "--llc", default=None, choices=("null", "occupancy"),
        help="shared-LLC model (default: null — no cache modelling)",
    )

    p_td = sub.add_parser(
        "trace-diff", help="full divergence analysis between two traces"
    )
    p_td.add_argument("trace_a", help="first JSONL trace")
    p_td.add_argument("trace_b", help="second JSONL trace")
    p_td.add_argument(
        "--json", action="store_true",
        help="print the structured DivergenceReport as JSON",
    )
    p_td.add_argument(
        "--no-validate", action="store_true",
        help="skip schema validation while loading",
    )

    p_bench = sub.add_parser(
        "bench", help="engine throughput benchmark + regression check",
        parents=[common, backend, machine],
    )
    p_bench.add_argument(
        "--repeats", type=int, default=3,
        help="timed runs per case, best kept (default: 3)",
    )
    p_bench.add_argument(
        "--out", default=None,
        help="write the JSON report to this path (e.g. BENCH_engine.json)",
    )
    p_bench.add_argument(
        "--baseline", default=None,
        help="compare against this report and exit 1 on regression",
    )
    p_bench.add_argument(
        "--threshold", type=float, default=None,
        help="relative quanta/s drop that counts as a regression "
             "(default: 0.30)",
    )
    p_bench.add_argument(
        "--json", action="store_true",
        help="print the full report document as JSON on stdout "
             "(instead of the text tables)",
    )
    p_bench.add_argument(
        "--batched", action="store_true",
        help="also run the batched-engine suite (N-run grids through "
             "repro.sim.batch vs serial scalar) and ratchet it",
    )
    p_bench.add_argument(
        "--scaling", action="store_true",
        help="also run the scaling suite (scheduler overhead per quantum, "
             "flat dike vs dike-hier, 40 -> 512 vcores) and ratchet it",
    )

    p_tr = sub.add_parser(
        "traffic",
        help="open-loop arrival sweeps: process x rate x policy with "
             "tail-latency metrics",
        parents=[common, backend, machine],
    )
    p_tr.add_argument(
        "--processes", default="poisson,bursty,diurnal",
        help="comma-separated arrival processes "
             "(poisson, bursty, diurnal, fixed)",
    )
    p_tr.add_argument(
        "--rate", default="0.2",
        help="comma-separated arrival rates in jobs/s at work scale 1 "
             "(arrival times scale with --scale, like job lengths)",
    )
    p_tr.add_argument(
        "--policy", "--policies", dest="policies", default="cfs,dio,dike",
        help="comma-separated open-loop policies (default: cfs,dio,dike)",
    )
    p_tr.add_argument(
        "--jobs", type=int, default=16, help="jobs per generated trace"
    )
    p_tr.add_argument(
        "--threads-per-job", type=int, default=8,
        help="threads per job (default: 8, the paper's instance size)",
    )
    p_tr.add_argument(
        "--trace-seed", type=int, default=0,
        help="seed of the arrival sampling (the engine seed is --seed)",
    )
    p_tr.add_argument(
        "--seeds", type=int, default=1,
        help="number of engine seeds per cell (seed, seed+1, ...)",
    )
    p_tr.add_argument(
        "--out", default=None, help="write the JSON traffic report here"
    )
    p_tr.add_argument(
        "--emit-traces", default=None, metavar="DIR",
        help="write each generated job trace (schema-versioned JSONL) "
             "into DIR",
    )
    p_tr.add_argument(
        "--dry-run", action="store_true",
        help="print the plan (task counts, dedup, cache state) and exit",
    )
    p_tr.add_argument(
        "--no-cache", action="store_true",
        help="skip the on-disk result cache (still dedups in memory)",
    )
    p_tr.add_argument(
        "--timeout", type=float, default=None,
        help="per-task timeout in seconds (default: none)",
    )
    p_tr.add_argument(
        "--retries", type=int, default=2,
        help="extra attempts per failing task (default: 2)",
    )
    p_tr.add_argument(
        "--events", default=None,
        help="events JSONL path (default: <cache-dir>/events.jsonl)",
    )
    p_tr.add_argument(
        "--verbose", action="store_true",
        help="one progress line per task instead of ~1/second",
    )
    p_tr.add_argument(
        "--llc", default=None, choices=("null", "occupancy"),
        help="shared-LLC model (default: null — no cache modelling)",
    )
    p_tr.add_argument(
        "--batch", action="store_true",
        help="group compatible tasks into multi-run batches for the "
             "vectorized engine (identical results and cache bytes)",
    )

    p_camp = sub.add_parser(
        "campaign",
        help="parallel, cached, fault-tolerant experiment grids",
        parents=[common, backend, machine],
    )
    p_camp.add_argument(
        "--workloads", default=None,
        help="comma-separated workload names (default: all 16)",
    )
    p_camp.add_argument(
        "--policies", default=None,
        help="comma-separated policy names (default: the paper's five)",
    )
    p_camp.add_argument(
        "--seeds", type=int, default=1,
        help="number of seeds per grid cell (seed, seed+1, ...)",
    )
    p_camp.add_argument(
        "--sweep", action="store_true",
        help="also cross every workload with the 32-point config sweep",
    )
    p_camp.add_argument(
        "--param", action="append", default=None, metavar="KEY=V1[,V2...]",
        help="declarative parameter grid: repeatable; crosses every "
             "policy whose schema has all grid keys with the cartesian "
             "product (e.g. --param swap_size=4,8 "
             "--param fairness_threshold=0.05,0.1)",
    )
    p_camp.add_argument(
        "--dry-run", action="store_true",
        help="print the plan (task counts, dedup, cache state) and exit",
    )
    p_camp.add_argument(
        "--no-cache", action="store_true",
        help="skip the on-disk result cache (still dedups in memory)",
    )
    p_camp.add_argument(
        "--timeout", type=float, default=None,
        help="per-task timeout in seconds (default: none)",
    )
    p_camp.add_argument(
        "--retries", type=int, default=2,
        help="extra attempts per failing task (default: 2)",
    )
    p_camp.add_argument(
        "--events", default=None,
        help="events JSONL path (default: <cache-dir>/events.jsonl)",
    )
    p_camp.add_argument(
        "--verbose", action="store_true",
        help="one progress line per task instead of ~1/second",
    )
    p_camp.add_argument(
        "--llc", default=None, choices=("null", "occupancy"),
        help="shared-LLC model (default: null — no cache modelling)",
    )
    p_camp.add_argument(
        "--batch", action="store_true",
        help="group compatible tasks into multi-run batches for the "
             "vectorized engine (identical results and cache bytes)",
    )

    p_tune = sub.add_parser(
        "tune",
        help="offline parameter search over the campaign backend: emit "
             "a tuned policy artifact + comparison report",
        parents=[common, backend, machine],
    )
    p_tune.add_argument(
        "--policy", default="dike",
        help="registry policy whose parameters are searched "
             "(default: dike — non-adaptive, the tuned-static candidate)",
    )
    p_tune.add_argument(
        "--strategy", choices=("ga", "halving"), default="ga",
        help="search strategy: seeded GA (tournament+mutation) or "
             "successive halving (quick-scale rungs promote to full "
             "scale); default: ga",
    )
    p_tune.add_argument(
        "--budget", type=int, default=24,
        help="distinct candidate evaluations the search may spend "
             "(cache hits make revisits free); default: 24",
    )
    p_tune.add_argument(
        "--search-seed", type=int, default=0,
        help="seed of the search RNG (same seed + budget => identical "
             "artifact); the engine seed stays --seed",
    )
    p_tune.add_argument(
        "--workloads", default=None,
        help="comma-separated evaluation workloads (default: all 16)",
    )
    p_tune.add_argument(
        "--seeds", type=int, default=1,
        help="engine seeds per evaluation cell (seed, seed+1, ...)",
    )
    p_tune.add_argument(
        "--tunables", default=None,
        help="comma-separated parameters to search (default: "
             "swap_size,quanta_length_s,fairness_threshold)",
    )
    p_tune.add_argument(
        "--population", type=int, default=8,
        help="GA population size (default: 8)",
    )
    p_tune.add_argument(
        "--eta", type=int, default=2,
        help="halving promotion factor (default: 2)",
    )
    p_tune.add_argument(
        "--out", default=None,
        help="tuned-policy artifact path (default: tuned_<policy>.json)",
    )
    p_tune.add_argument(
        "--report", default=None,
        help="also write the tuned-static vs paper-adaptive vs "
             "default-static comparison report (JSON) here",
    )
    p_tune.add_argument(
        "--compare", default="dike-af,dike-lms",
        help="extra report entries at registry defaults "
             "(default: dike-af,dike-lms)",
    )
    p_tune.add_argument(
        "--stats", default=None,
        help="write campaign execution statistics (executed, cache hits) "
             "as JSON here — kept out of the artifact so reruns stay "
             "byte-identical",
    )
    p_tune.add_argument(
        "--no-cache", action="store_true",
        help="skip the on-disk result cache (still dedups in memory)",
    )
    p_tune.add_argument(
        "--timeout", type=float, default=None,
        help="per-task timeout in seconds (default: none)",
    )
    p_tune.add_argument(
        "--retries", type=int, default=2,
        help="extra attempts per failing task (default: 2)",
    )
    p_tune.add_argument(
        "--events", default=None,
        help="events JSONL path (default: <cache-dir>/events.jsonl)",
    )
    p_tune.add_argument(
        "--verbose", action="store_true",
        help="one progress line per task instead of ~1/second",
    )
    p_tune.add_argument(
        "--llc", default=None, choices=("null", "occupancy"),
        help="shared-LLC model (default: null — no cache modelling)",
    )
    p_tune.add_argument(
        "--batch", action="store_true",
        help="group compatible tasks into multi-run batches for the "
             "vectorized engine (identical results and cache bytes)",
    )
    return parser


def _policy_choices() -> dict:
    """name -> default-parameter factory, for every registered policy."""
    from repro.policies import REGISTRY

    return {s.name: s.from_params({}) for s in REGISTRY}


def _build_policy(arg: str) -> tuple[str, object]:
    """``name[:param=value,...]`` -> (name, validated zero-arg factory).

    Raises ``ValueError`` (including ``UnknownPolicyError``) on a bad
    name or parameter, with the registry's own error message.  Parsing
    and validation go through the spec layer (`repro.spec.PolicyRef`),
    the same path campaign planning uses.
    """
    from repro.spec import PolicyRef

    ref = PolicyRef.from_arg(arg)
    return ref.name, ref.spec.from_params(dict(ref.params))


def _resolve_topology(args: argparse.Namespace) -> tuple[str, dict]:
    """Resolve the shared ``--topology`` flag to (canonical name, params).

    The one place CLI topology names meet the registry: parses the
    ``name[:param=value,...]`` grammar via the spec layer
    (`repro.spec.TopologyRef`), canonicalises aliases and validates
    parameters against the preset's schema.  Raises ``ValueError``
    (including ``UnknownTopologyError``) on bad input.
    """
    from repro.spec import TopologyRef

    ref = TopologyRef.from_arg(getattr(args, "topology", "heterogeneous"))
    return ref.spec.name, dict(ref.params)


def _note_pinned_topology(args: argparse.Namespace) -> None:
    """Paper-experiment verbs accept but ignore a non-default topology."""
    name, params = _resolve_topology(args)
    if name != "heterogeneous" or params:
        print(
            f"note: {args.command} regenerates paper artefacts pinned to "
            "the paper machine; --topology ignored",
            file=sys.stderr,
        )


def _resolve_shared_flags(args: argparse.Namespace) -> None:
    """Fill in the context-dependent defaults of the shared flags."""
    if getattr(args, "scale", "absent") is None:
        args.scale = QUICK_SCALE if getattr(args, "quick", False) else 1.0
    if getattr(args, "workers", "absent") is None:
        args.workers = 2 if args.command in ("campaign", "traffic", "tune") else 1


def _note_inprocess_flags(args: argparse.Namespace) -> None:
    """Verbs that always run in-process accept but ignore backend flags."""
    ignored = [
        flag
        for flag, value in (
            ("--workers", getattr(args, "workers", 1) > 1),
            ("--cache-dir", getattr(args, "cache_dir", None)),
        )
        if value
    ]
    if ignored:
        print(
            f"note: {args.command} always runs in-process; "
            f"{', '.join(ignored)} ignored",
            file=sys.stderr,
        )


def _make_campaign(args: argparse.Namespace):
    """Build a Campaign from CLI flags, or None for the plain inline path."""
    from repro.campaign import Campaign, ExecutorConfig, ResultStore, Telemetry

    invariants = getattr(args, "invariants", False)
    trace_dir = getattr(args, "trace_out", None)
    cache_dir = args.cache_dir
    if getattr(args, "no_cache", False):
        cache_dir = None
    elif cache_dir is None and args.command in ("campaign", "traffic", "tune"):
        cache_dir = DEFAULT_CACHE_DIR
    if (
        cache_dir is None
        and args.workers <= 1
        and not invariants
        and trace_dir is None
        and args.command not in ("campaign", "traffic", "tune")
    ):
        return None
    events = getattr(args, "events", None)
    if events is None and cache_dir is not None:
        events = f"{cache_dir}/events.jsonl"
    return Campaign(
        store=ResultStore(cache_dir) if cache_dir else None,
        executor=ExecutorConfig(
            max_workers=args.workers,
            timeout_s=getattr(args, "timeout", None),
            retries=getattr(args, "retries", 2),
        ),
        telemetry=Telemetry(
            events_path=events,
            stream=sys.stderr,
            verbose=getattr(args, "verbose", False),
        ),
        invariants=invariants,
        trace_dir=trace_dir,
        batch=getattr(args, "batch", False),
    )


def _cmd_list() -> int:
    print(format_table(["id", "title"], list_experiments()))
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    import json

    from repro.policies import REGISTRY

    if args.check:
        return _check_registry()
    specs = list(REGISTRY)
    if args.tag is not None:
        specs = [s for s in specs if args.tag in s.tags]
        if not specs:
            known = sorted({t for s in REGISTRY for t in s.tags})
            print(
                f"error: no policy carries tag {args.tag!r}; "
                f"known tags: {', '.join(known)}",
                file=sys.stderr,
            )
            return 2
    if args.names:
        for s in specs:
            print(s.name)
        return 0
    if args.json:
        print(json.dumps(
            [s.describe() for s in specs], indent=2, sort_keys=True
        ))
        return 0
    rows = []
    for s in specs:
        params = ", ".join(
            f"{p.name}={p.default}" for p in s.params
        ) or "-"
        rows.append([
            s.name,
            ",".join(s.tags) or "-",
            params,
            ",".join(s.invariants) or "-",
            s.doc,
        ])
    title = f"{len(specs)} registered policies"
    if args.tag is not None:
        title += f" tagged {args.tag!r}"
    print(format_table(
        ["policy", "tags", "parameters (defaults)", "invariant contract",
         "description"],
        rows,
        title=title,
    ))
    return 0


def _cmd_topologies(args: argparse.Namespace) -> int:
    import json

    from repro.topologies import TOPOLOGY_REGISTRY

    if args.check:
        return _check_topology_registry()
    specs = list(TOPOLOGY_REGISTRY)
    if args.tag is not None:
        specs = [s for s in specs if args.tag in s.tags]
        if not specs:
            known = sorted({t for s in TOPOLOGY_REGISTRY for t in s.tags})
            print(
                f"error: no topology carries tag {args.tag!r}; "
                f"known tags: {', '.join(known)}",
                file=sys.stderr,
            )
            return 2
    if args.names:
        for s in specs:
            print(s.name)
        return 0
    if args.json:
        print(json.dumps(
            [s.describe() for s in specs], indent=2, sort_keys=True
        ))
        return 0
    rows = []
    for s in specs:
        d = s.describe()
        shape = f"{d['n_sockets']}s/{d['n_vcores']}v"
        if d["heterogeneous"]:
            shape += " het"
        params = ", ".join(
            f"{p.name}={p.default}" for p in s.params
        ) or "-"
        rows.append([
            s.name,
            ",".join(s.tags) or "-",
            shape,
            params,
            s.doc,
        ])
    title = f"{len(specs)} registered topologies"
    if args.tag is not None:
        title += f" tagged {args.tag!r}"
    print(format_table(
        ["topology", "tags", "shape", "parameters (defaults)", "description"],
        rows,
        title=title,
    ))
    return 0


def _check_topology_registry() -> int:
    """Topology registry completeness gate (CI scaling-smoke)."""
    import json

    from repro.topologies import TOPOLOGY_REGISTRY

    problems: list[str] = []
    for s in TOPOLOGY_REGISTRY:
        try:
            built = s.build()
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            problems.append(f"{s.name}: default factory failed: {exc}")
            continue
        if built.n_vcores < 1:
            problems.append(f"{s.name}: built machine has no vcores")
        covered = sum(
            len(built.vcores_on_socket(sid)) for sid in range(built.n_sockets)
        )
        if covered != built.n_vcores:
            problems.append(
                f"{s.name}: socket tables cover {covered} vcores, "
                f"machine has {built.n_vcores}"
            )
        try:
            s.from_params(s.defaults())
        except Exception as exc:  # noqa: BLE001
            problems.append(
                f"{s.name}: schema defaults fail their own validation: {exc}"
            )
        for alias in s.aliases:
            if TOPOLOGY_REGISTRY.get(alias) is not s:
                problems.append(
                    f"{s.name}: alias {alias!r} resolves to a different spec"
                )
        try:
            json.dumps(s.describe())
        except Exception as exc:  # noqa: BLE001
            problems.append(f"{s.name}: describe() not JSON-serializable: {exc}")
    if problems:
        print(
            f"topology registry check FAILED ({len(problems)} problem(s)):",
            file=sys.stderr,
        )
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(
        f"topology registry OK ({len(TOPOLOGY_REGISTRY)} topologies, "
        f"{sum(len(s.params) for s in TOPOLOGY_REGISTRY)} parameters checked)"
    )
    return 0


def _check_registry() -> int:
    """Registry completeness / contract-drift gate (CI policy-matrix)."""
    from repro.obs.invariants import RULES, InvariantSink
    from repro.policies import REGISTRY

    problems: list[str] = []
    for s in REGISTRY:
        try:
            built = s.build()
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            problems.append(f"{s.name}: default factory failed: {exc}")
            continue
        if built.name != s.name and built.name not in s.aliases:
            problems.append(
                f"{s.name}: built scheduler reports name {built.name!r}, "
                "which is neither the policy name nor a declared alias"
            )
        unknown_rules = set(s.invariants) - set(RULES)
        if unknown_rules:
            problems.append(
                f"{s.name}: unknown invariant rule(s) {sorted(unknown_rules)}"
            )
        if not s.invariants:
            problems.append(f"{s.name}: empty invariant contract")
        try:
            sink = InvariantSink.for_policy(s.name)
        except Exception as exc:  # noqa: BLE001
            problems.append(f"{s.name}: for_policy failed: {exc}")
        else:
            if sink.rules != s.invariants:
                problems.append(
                    f"{s.name}: for_policy rules {sink.rules} drifted from "
                    f"the spec contract {s.invariants}"
                )
        try:
            s.from_params(s.defaults())
        except Exception as exc:  # noqa: BLE001
            problems.append(
                f"{s.name}: schema defaults fail their own validation: {exc}"
            )
    if problems:
        print(f"policy registry check FAILED ({len(problems)} problem(s)):",
              file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"policy registry OK ({len(REGISTRY)} policies, "
          f"{sum(len(s.params) for s in REGISTRY)} parameters checked)")
    return 0


def _cmd_run(exp_id: str, scale: float, seed: int, campaign=None) -> int:
    t0 = time.perf_counter()
    result = run_experiment(exp_id, seed=seed, work_scale=scale, campaign=campaign)
    print(result.render())
    print(f"\n[{exp_id} regenerated in {time.perf_counter() - t0:.1f}s "
          f"at work_scale={scale}]")
    return 0


def _cmd_compare(wl_name: str, scale: float, seed: int) -> int:
    spec = workload(wl_name)
    results = run_policies(spec, seed=seed, work_scale=scale)
    base = results["cfs"]
    rows = []
    for name, res in results.items():
        rows.append(
            [
                name,
                fairness(res),
                speedup(res, base),
                res.swap_count,
                res.makespan_s,
            ]
        )
    print(
        format_table(
            ["policy", "fairness", "speedup", "swaps", "makespan(s)"],
            rows,
            title=f"{wl_name} ({spec.workload_class}): policy comparison",
        )
    )
    return 0


def _cmd_report(scale: float, seed: int, n_seeds: int = 1, campaign=None) -> int:
    from repro.analysis.report import build_report
    from repro.experiments.fig6 import run_fig6

    seeds = tuple(seed + i for i in range(n_seeds)) if n_seeds > 1 else None
    fig6 = run_fig6(seed=seed, work_scale=scale, seeds=seeds, campaign=campaign)
    report = build_report(fig6)
    print(report.render())
    return 0 if report.all_hold else 1


def _cmd_replicate(wl_name: str, n_seeds: int, scale: float, seed: int) -> int:
    from repro.analysis.replication import compare_policies
    from repro.policies import REGISTRY

    spec = workload(wl_name)
    seeds = [seed + i for i in range(n_seeds)]
    policies = {
        k: v for k, v in REGISTRY.standard_factories().items() if k != "cfs"
    }
    cells = compare_policies(spec, policies, seeds, work_scale=scale)
    rows = []
    for name, cell in cells.items():
        rows.append(
            [
                name,
                cell.fairness.mean,
                cell.fairness.std,
                cell.speedup.mean,
                cell.speedup.std,
                cell.swaps.mean,
            ]
        )
    print(
        format_table(
            ["policy", "F mean", "F std", "S mean", "S std", "swaps"],
            rows,
            title=f"{wl_name}: {n_seeds}-seed replication (seeds {seeds})",
        )
    )
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.analysis.timeline import placement_timeline, swap_activity_sparkline
    from repro.experiments.runner import run_workload
    from repro.topologies import TOPOLOGY_REGISTRY

    try:
        topo_name, topo_params = _resolve_topology(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    topo = TOPOLOGY_REGISTRY.build(topo_name, topo_params)
    spec = workload(args.workload)
    result = run_workload(
        spec, _policy_choices()[args.policy](), seed=args.seed,
        work_scale=args.scale, topology=topo, record_timeseries=True,
    )
    print(placement_timeline(result, topo))
    print()
    print(swap_activity_sparkline(result))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_workload
    from repro.obs import attach
    from repro.topologies import TOPOLOGY_REGISTRY

    _note_inprocess_flags(args)
    spec = workload(args.workload)
    try:
        policy_name, factory = _build_policy(args.policy)
        topo_name, topo_params = _resolve_topology(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    scheduler = factory()
    topology = TOPOLOGY_REGISTRY.build(topo_name, topo_params)
    out = args.trace_out or args.out or "trace.jsonl"
    # Dike carries its swapSize in config; the policy contract picks it
    # up so the budget rule starts from the configured value.
    config = getattr(scheduler, "config", None)
    att = attach(
        trace=out,
        chrome=args.chrome,
        max_bytes=args.max_bytes,
        metrics=True,
        tally=True,
        invariants=False if args.no_invariants else policy_name,
        strict=args.strict,
        swap_size=getattr(config, "swap_size", None),
    )

    t0 = time.perf_counter()
    result = run_workload(
        spec, scheduler, seed=args.seed, work_scale=args.scale,
        topology=topology, record_timeseries=False, bus=att, llc=args.llc,
    )
    att.close()
    att.finalize(result)

    print(f"{spec.name}/{policy_name}@s{args.seed}: "
          f"makespan={result.makespan_s:.1f}s quanta={result.n_quanta} "
          f"swaps={result.swap_count}")
    rows = [[kind, n] for kind, n in sorted(att.tally.counts.items())]
    print(format_table(["event", "count"], rows,
                       title=f"{att.jsonl.n_events} events -> {out}"))
    metrics = result.info.get("metrics", {})
    if metrics:
        mrows = []
        for name, snap in metrics.items():
            if isinstance(snap, dict):
                if not snap.get("count"):
                    continue
                mrows.append([name, snap["count"],
                              f"{snap['mean']:.3g}", f"{snap['max']:.3g}"])
            else:
                mrows.append([name, snap, "", ""])
        print(format_table(["metric", "count/value", "mean", "max"], mrows,
                           title="metrics"))
    if att.chrome is not None:
        print(f"chrome trace -> {args.chrome} "
              "(open in chrome://tracing or ui.perfetto.dev)")
    print(f"[traced in {time.perf_counter() - t0:.1f}s "
          f"at work_scale={args.scale}]")
    invariants = att.invariants
    if invariants is not None:
        if invariants.ok:
            print(f"invariants: OK ({invariants.n_events} events checked, "
                  f"rules: {', '.join(invariants.rules)})")
        else:
            print(f"invariants: {len(invariants.violations)} violation(s):",
                  file=sys.stderr)
            for v in invariants.violations[:20]:
                print(f"  {v}", file=sys.stderr)
            return 1
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    import json

    from repro.obs.diff import (
        SchemaMismatch,
        analyze_traces,
        load_events,
        render_report,
    )

    try:
        events_a = load_events(args.trace_a, validate=not args.no_validate)
        events_b = load_events(args.trace_b, validate=not args.no_validate)
        report = analyze_traces(events_a, events_b)
    except SchemaMismatch as exc:
        # Events from different schema versions are not comparable — any
        # "alignment" would be noise, so refuse loudly instead.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_report(report, label_a=args.trace_a, label_b=args.trace_b))
    return 0 if report.identical else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import json as _json

    from repro.benchmarking import (
        BATCHED_SUITE,
        DEFAULT_SCALING_THRESHOLD,
        DEFAULT_THRESHOLD,
        FULL_SUITE,
        QUICK_SUITE,
        SCALING_SUITE,
        build_report,
        compare,
        compare_scaling,
        load_report,
        run_batched_suite,
        run_scaling_suite,
        run_suite,
        write_report,
    )
    from repro.topologies import TOPOLOGY_REGISTRY

    _note_inprocess_flags(args)
    try:
        topo_name, topo_params = _resolve_topology(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    topology_factory = (
        TOPOLOGY_REGISTRY.factory(topo_name, topo_params)
        if topo_name != "heterogeneous" or topo_params
        else None
    )
    if topology_factory is not None and args.baseline:
        print(
            "note: throughput cases measured on a non-default --topology "
            "are not comparable to a committed baseline; expect spurious "
            "deltas",
            file=sys.stderr,
        )
    cases = QUICK_SUITE if args.quick else FULL_SUITE
    baseline = load_report(args.baseline) if args.baseline else None
    base_results = dict(baseline["results"]) if baseline else {}
    base_reference = baseline.get("reference", {}) if baseline else {}
    ref_results = (
        base_reference.get("results", {})
        if isinstance(base_reference, dict)
        else {}
    )
    quiet = args.json

    t0 = time.perf_counter()
    rows = []

    def _ratio(r: dict, against: Mapping | None) -> str:
        if not against:
            return ""
        base = float(against.get("quanta_per_s", 0.0))
        return f"{r['quanta_per_s'] / base:.1f}x" if base > 0 else ""

    def progress(name: str, r: dict) -> None:
        delta = ""
        if name in base_results:
            base = float(base_results[name]["quanta_per_s"])
            if base > 0:
                delta = f"{100.0 * (r['quanta_per_s'] / base - 1.0):+.0f}%"
        rows.append(
            [
                name,
                r["quanta_per_s"],
                r["n_quanta"],
                r["wall_s"],
                delta,
                _ratio(r, ref_results.get(name)),
            ]
        )
        print(f"  {name}: {r['quanta_per_s']:.0f} quanta/s", file=sys.stderr)

    results = run_suite(
        cases, repeats=args.repeats, progress=progress,
        topology_factory=topology_factory,
    )
    if not quiet:
        print(
            format_table(
                ["case", "quanta/s", "quanta", "wall(s)", "vs baseline",
                 "vs reference"],
                rows,
                title=f"engine throughput ({len(cases)} cases, "
                      f"best of {args.repeats})",
            )
        )

    batched = None
    if args.batched:
        batch_rows = []

        def batch_progress(name: str, r: dict) -> None:
            batch_rows.append(
                [
                    name,
                    r["quanta_per_s"],
                    r["scalar_quanta_per_s"],
                    f"{r['speedup_vs_scalar']:.2f}x",
                    r["n_runs"],
                    r["wall_s"],
                ]
            )
            print(
                f"  {name}: {r['quanta_per_s']:.0f} quanta/s "
                f"({r['speedup_vs_scalar']:.2f}x vs scalar)",
                file=sys.stderr,
            )

        batched = run_batched_suite(
            BATCHED_SUITE, repeats=args.repeats, progress=batch_progress
        )
        if not quiet:
            print(
                format_table(
                    ["case", "batched q/s", "scalar q/s", "speedup",
                     "runs", "wall(s)"],
                    batch_rows,
                    title=f"batched engine ({len(BATCHED_SUITE)} grids, "
                          f"best of {args.repeats})",
                )
            )

    scaling = None
    if args.scaling:
        scaling_rows = []

        def scaling_progress(name: str, r: dict) -> None:
            scaling_rows.append(
                [
                    name,
                    r["n_threads"],
                    r["overhead_us_per_quantum"],
                    r["n_quanta"],
                    r["wall_s"],
                ]
            )
            print(
                f"  {name}: {r['overhead_us_per_quantum']:.0f} us/quantum "
                f"({r['n_threads']} threads)",
                file=sys.stderr,
            )

        scaling = run_scaling_suite(
            SCALING_SUITE, repeats=args.repeats, progress=scaling_progress
        )
        if not quiet:
            print(
                format_table(
                    ["case", "threads", "sched us/quantum", "quanta",
                     "wall(s)"],
                    scaling_rows,
                    title=f"scheduler overhead vs machine size "
                          f"({len(SCALING_SUITE)} points, "
                          f"best of {args.repeats})",
                )
            )
    if not quiet:
        print(f"[bench completed in {time.perf_counter() - t0:.1f}s]")

    # Preserve the committed report's reference block (the pre-refactor
    # numbers) when overwriting it in place, and its batched/scaling
    # blocks when this invocation did not re-measure them.
    reference = baseline.get("reference") if baseline else None
    prior = (
        load_report(args.out)
        if args.out and Path(args.out).exists()
        else None
    )
    if reference is None and prior is not None:
        reference = prior.get("reference")
    batched_out = batched
    if batched_out is None and prior is not None:
        batched_out = prior.get("batched")
    scaling_out = scaling
    if scaling_out is None and prior is not None:
        scaling_out = prior.get("scaling")

    if args.json:
        print(_json.dumps(
            build_report(
                results,
                repeats=args.repeats,
                reference=reference,
                batched=batched if batched is not None else None,
                scaling=scaling if scaling is not None else None,
            ),
            indent=2,
            sort_keys=True,
        ))

    if args.out:
        write_report(
            args.out,
            results,
            repeats=args.repeats,
            reference=reference,
            batched=batched_out,
            scaling=scaling_out,
        )
        if not quiet:
            print(f"report -> {args.out}")

    if baseline is not None:
        threshold = (
            args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
        )
        current = dict(results)
        if batched is not None:
            # Batched grids ratchet alongside the scalar cases; the names
            # are disjoint (batch32/...), so one compare covers both.
            current.update(batched)
            base_results.update(baseline.get("batched", {}))
        regressions = compare(current, base_results, threshold=threshold)
        if scaling is not None:
            # Scheduler overhead ratchets lower-is-better, with its own
            # (wider) default threshold; --threshold overrides both.
            regressions += compare_scaling(
                scaling,
                baseline.get("scaling", {}),
                threshold=(
                    args.threshold
                    if args.threshold is not None
                    else DEFAULT_SCALING_THRESHOLD
                ),
            )
        if regressions:
            print(f"{len(regressions)} perf regression(s):", file=sys.stderr)
            for r in regressions:
                print(f"  {r}", file=sys.stderr)
            return 1
        if not quiet:
            n_compared = len(set(current) & set(base_results))
            if scaling is not None:
                n_compared += len(set(scaling) & set(baseline.get("scaling", {})))
            print(f"no regressions beyond {threshold * 100:.0f}% "
                  f"({n_compared} cases compared)")
    return 0


def _cmd_all(scale: float, seed: int, campaign=None) -> int:
    for exp_id in EXPERIMENTS:
        _cmd_run(exp_id, scale, seed, campaign=campaign)
        print()
    return 0


def _parse_param_grid(
    entries: list[str] | None,
) -> tuple[tuple[str, tuple], ...]:
    """``["swap_size=4,8"]`` -> ``(("swap_size", (4, 8)),)``.

    Values parse as int, then float, then bool literals, else string —
    the policy schema validates types downstream, with the parameter
    name in the error message.
    """
    def parse_value(text: str) -> object:
        for cast in (int, float):
            try:
                return cast(text)
            except ValueError:
                pass
        if text in ("true", "True"):
            return True
        if text in ("false", "False"):
            return False
        return text

    grid = []
    for entry in entries or []:
        key, sep, values = entry.partition("=")
        if not sep or not key or not values:
            raise ValueError(
                f"bad --param {entry!r}; expected KEY=V1[,V2...]"
            )
        grid.append((key, tuple(parse_value(v) for v in values.split(","))))
    return tuple(grid)


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignSpec, TaskFailure, plan
    from repro.policies import REGISTRY
    from repro.util.stats import geometric_mean

    workloads = (
        tuple(args.workloads.split(",")) if args.workloads
        else tuple(WORKLOAD_TABLE)
    )
    policies = (
        tuple(args.policies.split(",")) if args.policies
        else tuple(s.name for s in REGISTRY.tagged("standard"))
    )
    try:
        topo_name, topo_params = _resolve_topology(args)
        spec = CampaignSpec(
            name="sweep-grid" if args.sweep else "fig6-grid",
            workloads=workloads,
            policies=policies,
            seeds=tuple(args.seed + i for i in range(args.seeds)),
            work_scale=args.scale,
            sweep=args.sweep,
            param_grid=_parse_param_grid(args.param),
            invariants=args.invariants,
            llc=args.llc,
            topology=topo_name,
            topology_params=tuple(sorted(topo_params.items())),
        )
        campaign = _make_campaign(args)
        the_plan = plan(spec)
    except ValueError as exc:  # bad workload/policy/seed flags, not a crash
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if campaign.store is not None:
        the_plan = replace(
            the_plan,
            cached=frozenset(k for k in the_plan.keys if k in campaign.store),
        )
    print(the_plan.describe())
    if args.dry_run:
        return 0

    results = campaign.gather(list(the_plan.tasks), strict=False)
    by_key = dict(zip(the_plan.keys, results))
    failures = [r for r in results if isinstance(r, TaskFailure)]
    campaign.telemetry.close()

    # Aggregate policy summary (over cells whose runs all succeeded).
    if "cfs" in policies:
        rows = []
        for p in policies:
            fair_vals, speed_vals = [], []
            for wl in workloads:
                for s in spec.seeds:
                    run = _cell(by_key, spec, wl, p, s, campaign.invariants)
                    base = _cell(by_key, spec, wl, "cfs", s, campaign.invariants)
                    # A param_grid campaign has no unparameterised cell for
                    # grid-covered policies (None here); skip those rows.
                    if run is None or base is None:
                        continue
                    if isinstance(run, TaskFailure) or isinstance(base, TaskFailure):
                        continue
                    fair_vals.append(fairness(run))
                    speed_vals.append(speedup(run, base))
            if fair_vals:
                rows.append([
                    p,
                    float(sum(fair_vals) / len(fair_vals)),
                    geometric_mean(speed_vals),
                    len(fair_vals),
                ])
        print(
            format_table(
                ["policy", "mean fairness", "geomean speedup", "cells"],
                rows,
                title=f"campaign {spec.name!r}: policy aggregate "
                      f"({len(workloads)} workloads x {len(spec.seeds)} seeds)",
            )
        )
    print(f"\n[campaign] {campaign.telemetry.render_summary()}")
    if failures:
        print(f"[campaign] {len(failures)} task(s) failed:", file=sys.stderr)
        for f in failures:
            print(f"  {f.label} [{f.kind} x{f.attempts}]: {f.error}", file=sys.stderr)
        return 1
    if campaign.telemetry.invariant_violations:
        print(
            f"[campaign] {campaign.telemetry.invariant_violations} invariant "
            "violation(s) — the scheduling contract does not hold",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    import json

    from repro.campaign import TaskFailure
    from repro.traffic import (
        TrafficCampaignSpec,
        TrafficSpec,
        plan_traffic,
        write_trace,
    )

    try:
        processes = tuple(args.processes.split(","))
        rates = tuple(float(r) for r in args.rate.split(","))
        load = tuple(
            TrafficSpec.at_rate(
                rate,
                process=proc,
                n_jobs=args.jobs,
                trace_seed=args.trace_seed,
                n_threads=args.threads_per_job,
            )
            for proc in processes
            for rate in rates
        )
        topo_name, topo_params = _resolve_topology(args)
        spec = TrafficCampaignSpec(
            traffic=load,
            policies=tuple(args.policies.split(",")),
            seeds=tuple(args.seed + i for i in range(args.seeds)),
            work_scale=args.scale,
            invariants=args.invariants,
            llc=args.llc,
            topology=topo_name,
            topology_params=tuple(sorted(topo_params.items())),
        )
        campaign = _make_campaign(args)
        the_plan = plan_traffic(spec)
    except ValueError as exc:  # bad process/rate/policy flags, not a crash
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if campaign.store is not None:
        the_plan = replace(
            the_plan,
            cached=frozenset(k for k in the_plan.keys if k in campaign.store),
        )
    print(the_plan.describe())
    if args.emit_traces:
        trace_dir = Path(args.emit_traces)
        trace_dir.mkdir(parents=True, exist_ok=True)
        for t in load:
            path = write_trace(t.trace(), trace_dir / f"{t.name}.jsonl")
            print(f"[traffic] trace -> {path}")
    if args.dry_run:
        return 0

    results = campaign.gather(list(the_plan.tasks), strict=False)
    failures = [r for r in results if isinstance(r, TaskFailure)]
    campaign.telemetry.close()

    by_name = {t.name: t for t in load}
    rows, cells = [], []
    for task, res in zip(the_plan.tasks, results):
        if isinstance(res, TaskFailure):
            continue
        t = by_name[task.workload.name]
        summary = res.info.get("traffic", {})
        rows.append([
            t.process,
            t.rate_per_s,
            task.policy,
            task.seed,
            summary.get("slowdown_p50"),
            summary.get("slowdown_p95"),
            summary.get("slowdown_p99"),
            summary.get("throughput_jobs_per_s"),
            summary.get("queue_depth_peak"),
        ])
        cells.append({
            "traffic": task.workload.name,
            "process": t.process,
            "rate_per_s": t.rate_per_s,
            "n_jobs": t.n_jobs,
            "trace_seed": t.trace_seed,
            "policy": task.policy,
            "seed": task.seed,
            "makespan_s": res.makespan_s,
            "summary": summary,
        })
    if rows:
        print(
            format_table(
                [
                    "process", "rate/s", "policy", "seed",
                    "slow p50", "slow p95", "slow p99",
                    "jobs/s", "queue peak",
                ],
                rows,
                title=f"traffic {spec.name!r}: tail latency by cell "
                      f"({len(load)} loads x {len(spec.policies)} policies "
                      f"x {len(spec.seeds)} seeds)",
            )
        )
    if args.out:
        report = {
            "name": spec.name,
            "work_scale": spec.work_scale,
            "processes": list(processes),
            "rates_per_s": list(rates),
            "policies": list(spec.policies),
            "seeds": list(spec.seeds),
            "cells": cells,
        }
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"[traffic] report -> {out}")
    print(f"\n[traffic] {campaign.telemetry.render_summary()}")
    if failures:
        print(f"[traffic] {len(failures)} task(s) failed:", file=sys.stderr)
        for f in failures:
            print(f"  {f.label} [{f.kind} x{f.attempts}]: {f.error}", file=sys.stderr)
        return 1
    if campaign.telemetry.invariant_violations:
        print(
            f"[traffic] {campaign.telemetry.invariant_violations} invariant "
            "violation(s) — the scheduling contract does not hold",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.tune import TuneConfig, Tuner
    from repro.tune.space import DEFAULT_TUNABLES
    from repro.workloads.suite import WORKLOAD_TABLE as _WORKLOADS

    try:
        topo_name, topo_params = _resolve_topology(args)
        config = TuneConfig(
            policy=args.policy,
            strategy=args.strategy,
            budget=args.budget,
            seed=args.search_seed,
            tunables=(
                tuple(args.tunables.split(",")) if args.tunables
                else DEFAULT_TUNABLES
            ),
            workloads=(
                tuple(args.workloads.split(",")) if args.workloads
                else tuple(_WORKLOADS)
            ),
            eval_seeds=tuple(args.seed + i for i in range(args.seeds)),
            work_scale=args.scale,
            quick_scale=QUICK_SCALE,
            topology=topo_name,
            topology_params=tuple(sorted(topo_params.items())),
            llc=args.llc,
            invariants=args.invariants,
            population=args.population,
            eta=args.eta,
        )
        campaign = _make_campaign(args)
        tuner = Tuner(
            campaign, config,
            log=lambda msg: print(f"[tune] {msg}", file=sys.stderr),
        )
    except ValueError as exc:  # bad policy/tunable/workload flags
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(
        f"[tune] {config.strategy} over {list(config.tunables)} of "
        f"{config.policy!r}: budget {config.budget}, "
        f"{len(config.workloads)} workload(s) x "
        f"{len(config.eval_seeds)} seed(s) per evaluation",
        file=sys.stderr,
    )
    try:
        return _run_tune(args, campaign, tuner, config)
    finally:
        campaign.telemetry.close()


def _run_tune(args, campaign, tuner, config) -> int:
    import json

    from repro.tune import build_tuning_report

    result = tuner.run()
    artifact = result.to_artifact()
    out = Path(args.out or f"tuned_{config.policy}.json")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    print(f"[tune] artifact -> {out}")
    print(
        f"[tune] best score {result.best_score:.4f} "
        f"after {result.n_evaluations} evaluation(s); "
        f"--policy {result.policy_arg()}"
    )

    if args.stats:
        s = campaign.telemetry.summary()
        executed, hits = int(s["done"]), int(s["cache_hits"])
        stats_doc = {
            "executed": executed,
            "cache_hits": hits,
            "failed": int(s["failed"]),
            "hit_rate": (
                hits / (hits + executed) if (hits + executed) else 0.0
            ),
        }
        stats_path = Path(args.stats)
        stats_path.parent.mkdir(parents=True, exist_ok=True)
        stats_path.write_text(
            json.dumps(stats_doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"[tune] stats -> {stats_path}")

    if args.report:
        comparisons = tuple(
            name for name in args.compare.split(",") if name
        )
        report = build_tuning_report(
            campaign, config, result.best_params, comparisons
        )
        report_path = Path(args.report)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"[tune] report -> {report_path}")
        rows = [
            [
                label,
                report["entries"][label]["policy"],
                report["entries"][label]["mean_fairness"],
            ]
            for label in report["ranking"]
        ]
        print(
            format_table(
                ["entry", "policy", "mean fairness"],
                rows,
                title="tuning report (Eqn. 4 fairness, higher is better)",
            )
        )
    return 0


def _cell(
    by_key: dict, spec, wl_name: str, policy: str, seed: int,
    invariants: bool = False,
) -> object:
    from repro.campaign import SimParams
    from repro.spec import ExperimentSpec

    exp = ExperimentSpec.for_workload(
        workload(wl_name), policy, seed,
        sim=SimParams(
            work_scale=spec.work_scale,
            llc=getattr(spec, "llc", None),
            topology=getattr(spec, "topology", "heterogeneous"),
            topology_params=getattr(spec, "topology_params", ()),
        ),
        invariants=invariants,
    )
    return by_key.get(exp.cache_key())


def _with_campaign(args: argparse.Namespace, run) -> int:
    """Run a command with its (optional) campaign, closing telemetry after
    so cache-backed invocations end with the executed/hits summary line."""
    campaign = _make_campaign(args)
    try:
        return run(campaign)
    finally:
        if campaign is not None:
            campaign.telemetry.close()


def main(argv: list[str] | None = None) -> int:
    try:
        return _dispatch(build_parser().parse_args(argv))
    except BrokenPipeError:  # e.g. `dike-repro list | head` — not an error
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    _resolve_shared_flags(args)
    if args.command == "list":
        return _cmd_list()
    if args.command == "policies":
        return _cmd_policies(args)
    if args.command == "topologies":
        return _cmd_topologies(args)
    if args.command == "run":
        try:
            _note_pinned_topology(args)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return _with_campaign(
            args, lambda c: _cmd_run(args.experiment, args.scale, args.seed, c)
        )
    if args.command == "compare":
        return _cmd_compare(args.workload, args.scale, args.seed)
    if args.command == "report":
        return _with_campaign(
            args, lambda c: _cmd_report(args.scale, args.seed, args.seeds, c)
        )
    if args.command == "replicate":
        return _cmd_replicate(args.workload, args.seeds, args.scale, args.seed)
    if args.command == "timeline":
        return _cmd_timeline(args)
    if args.command == "all":
        return _with_campaign(
            args, lambda c: _cmd_all(args.scale, args.seed, c)
        )
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "traffic":
        return _cmd_traffic(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "trace-diff":
        return _cmd_trace_diff(args)
    if args.command == "bench":
        return _cmd_bench(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
