"""Command-line interface: ``dike-repro`` / ``python -m repro``.

Subcommands
-----------
``list``
    Show all regenerable experiments.
``run <experiment-id> [--scale S] [--seed N]``
    Regenerate one table/figure and print its plain-text render.
``compare <workload> [--scale S] [--seed N]``
    Run the five standard policies on one workload and print a summary.
``report [--scale S] [--seed N]``
    Run the full Figure 6 evaluation and print the shape-checklist report.
``replicate <workload> [--seeds N] [--scale S]``
    Multi-seed robustness summary of the five policies on one workload.
``timeline <workload> <policy> [--scale S]``
    ASCII placement timeline + swap-activity sparkline for one run.
``all [--scale S] [--seed N]``
    Regenerate every experiment (the full evaluation; slow at scale 1.0).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, list_experiments, run_experiment
from repro.experiments.runner import run_policies
from repro.metrics.fairness import fairness
from repro.metrics.performance import speedup
from repro.util.rng import DEFAULT_SEED
from repro.util.tables import format_table
from repro.workloads.suite import workload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dike-repro",
        description=(
            "Reproduction of 'Providing Fairness in Heterogeneous Multicores "
            "with a Predictive, Adaptive Scheduler' (IPPS 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list regenerable experiments")

    p_run = sub.add_parser("run", help="regenerate one experiment")
    p_run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_common(p_run)

    p_cmp = sub.add_parser("compare", help="compare policies on one workload")
    p_cmp.add_argument("workload", help="wl1 .. wl16")
    _add_common(p_cmp)

    p_rep = sub.add_parser("report", help="full evaluation + shape checklist")
    p_rep.add_argument(
        "--seeds", type=int, default=1,
        help="average the evaluation over this many seeds",
    )
    _add_common(p_rep)

    p_repl = sub.add_parser("replicate", help="multi-seed robustness check")
    p_repl.add_argument("workload", help="wl1 .. wl16")
    p_repl.add_argument("--seeds", type=int, default=3, help="number of seeds")
    _add_common(p_repl)

    p_tl = sub.add_parser("timeline", help="placement timeline of one run")
    p_tl.add_argument("workload", help="wl1 .. wl16")
    p_tl.add_argument(
        "policy", choices=sorted(_policy_choices()), help="scheduling policy"
    )
    _add_common(p_tl)

    p_all = sub.add_parser("all", help="regenerate every experiment")
    _add_common(p_all)
    return parser


def _policy_choices() -> dict:
    from repro.experiments.runner import STANDARD_POLICIES

    return STANDARD_POLICIES


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="work scale (1.0 = paper-sized runs; smaller = faster)",
    )
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)


def _cmd_list() -> int:
    print(format_table(["id", "title"], list_experiments()))
    return 0


def _cmd_run(exp_id: str, scale: float, seed: int) -> int:
    t0 = time.perf_counter()
    result = run_experiment(exp_id, seed=seed, work_scale=scale)
    print(result.render())
    print(f"\n[{exp_id} regenerated in {time.perf_counter() - t0:.1f}s "
          f"at work_scale={scale}]")
    return 0


def _cmd_compare(wl_name: str, scale: float, seed: int) -> int:
    spec = workload(wl_name)
    results = run_policies(spec, seed=seed, work_scale=scale)
    base = results["cfs"]
    rows = []
    for name, res in results.items():
        rows.append(
            [
                name,
                fairness(res),
                speedup(res, base),
                res.swap_count,
                res.makespan_s,
            ]
        )
    print(
        format_table(
            ["policy", "fairness", "speedup", "swaps", "makespan(s)"],
            rows,
            title=f"{wl_name} ({spec.workload_class}): policy comparison",
        )
    )
    return 0


def _cmd_report(scale: float, seed: int, n_seeds: int = 1) -> int:
    from repro.analysis.report import build_report
    from repro.experiments.fig6 import run_fig6

    seeds = tuple(seed + i for i in range(n_seeds)) if n_seeds > 1 else None
    fig6 = run_fig6(seed=seed, work_scale=scale, seeds=seeds)
    report = build_report(fig6)
    print(report.render())
    return 0 if report.all_hold else 1


def _cmd_replicate(wl_name: str, n_seeds: int, scale: float, seed: int) -> int:
    from repro.analysis.replication import compare_policies
    from repro.experiments.runner import STANDARD_POLICIES

    spec = workload(wl_name)
    seeds = [seed + i for i in range(n_seeds)]
    policies = {k: v for k, v in STANDARD_POLICIES.items() if k != "cfs"}
    cells = compare_policies(spec, policies, seeds, work_scale=scale)
    rows = []
    for name, cell in cells.items():
        rows.append(
            [
                name,
                cell.fairness.mean,
                cell.fairness.std,
                cell.speedup.mean,
                cell.speedup.std,
                cell.swaps.mean,
            ]
        )
    print(
        format_table(
            ["policy", "F mean", "F std", "S mean", "S std", "swaps"],
            rows,
            title=f"{wl_name}: {n_seeds}-seed replication (seeds {seeds})",
        )
    )
    return 0


def _cmd_timeline(wl_name: str, policy: str, scale: float, seed: int) -> int:
    from repro.analysis.timeline import placement_timeline, swap_activity_sparkline
    from repro.experiments.runner import run_workload
    from repro.sim.topology import xeon_e5_heterogeneous

    topo = xeon_e5_heterogeneous()
    spec = workload(wl_name)
    result = run_workload(
        spec, _policy_choices()[policy](), seed=seed, work_scale=scale,
        topology=topo, record_timeseries=True,
    )
    print(placement_timeline(result, topo))
    print()
    print(swap_activity_sparkline(result))
    return 0


def _cmd_all(scale: float, seed: int) -> int:
    for exp_id in EXPERIMENTS:
        _cmd_run(exp_id, scale, seed)
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    try:
        return _dispatch(build_parser().parse_args(argv))
    except BrokenPipeError:  # e.g. `dike-repro list | head` — not an error
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.scale, args.seed)
    if args.command == "compare":
        return _cmd_compare(args.workload, args.scale, args.seed)
    if args.command == "report":
        return _cmd_report(args.scale, args.seed, args.seeds)
    if args.command == "replicate":
        return _cmd_replicate(args.workload, args.seeds, args.scale, args.seed)
    if args.command == "timeline":
        return _cmd_timeline(args.workload, args.policy, args.scale, args.seed)
    if args.command == "all":
        return _cmd_all(args.scale, args.seed)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
