"""Fault-tolerant task execution: process pool + retries + timeouts.

The executor runs ``(key, task)`` pairs through a worker function
(:func:`repro.campaign.spec.execute_task` in production; tests inject
crashing/hanging stand-ins) and returns ``key -> RunResult | TaskFailure``.
A failing *task* never aborts the campaign: it is retried with exponential
backoff up to ``retries`` extra attempts and then recorded as a clean
:class:`TaskFailure`.

Fault model
-----------
* **Task raises** — retried, then failed with ``kind="error"``.
* **Worker process dies** (segfault, OOM-kill) — `BrokenProcessPool`
  poisons every in-flight future indistinguishably, so nobody is charged
  an attempt: all victims are requeued as *suspects* and probed one at a
  time in singleton pools, where blame is exact.  A suspect whose
  singleton pool dies consumes an attempt (and is eventually a terminal
  ``kind="worker-lost"`` failure); innocent bystanders clear themselves
  by completing and never lose retry budget to a co-scheduled
  pool-killer.  Each pool death rebuilds the pool, at most
  ``max_pool_rebuilds`` times before degrading to serial in-process
  execution for the remainder.
* **Task exceeds** ``timeout_s`` — its future is cancelled and the task
  retried/failed with ``kind="timeout"``.  A genuinely *running* task
  cannot be preempted through `concurrent.futures`, so the pool is
  abandoned (the stuck worker keeps grinding until the simulation's own
  ``max_time_s`` bound fires) and a fresh pool takes over; other in-flight
  tasks are requeued without an attempt penalty.
* **Pool cannot be created at all** (restricted environments) — serial
  from the start.

Timeouts are measured from submission.  The submission window equals
``max_workers``, so queue delay is ~0 and submission time ≈ start time.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.campaign.spec import TaskSpec, execute_task
from repro.campaign.telemetry import Telemetry
from repro.obs.attach import run_info_telemetry

__all__ = ["ExecutorConfig", "TaskFailure", "run_tasks"]


@dataclass(frozen=True)
class ExecutorConfig:
    """Execution policy of a campaign.

    ``retries`` counts *extra* attempts after the first (2 ⇒ up to three
    tries per task); ``timeout_s=None`` disables per-task timeouts (the
    simulator's ``max_time_s`` still bounds every run).
    """

    max_workers: int = 1
    timeout_s: float | None = None
    retries: int = 2
    backoff_s: float = 0.25
    backoff_factor: float = 2.0
    #: Pool deaths tolerated before serial degradation.  Must exceed
    #: ``retries + 2`` for a persistent pool-killer to be terminally
    #: failed by suspect probing (1 group death + retries+1 singleton
    #: deaths) instead of dragging everyone to the serial path.
    max_pool_rebuilds: int = 5

    @property
    def parallel(self) -> bool:
        return self.max_workers > 1

    def backoff_for(self, attempt: int) -> float:
        """Sleep before attempt ``attempt+1`` (attempts count from 1)."""
        return self.backoff_s * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class TaskFailure:
    """Terminal per-task failure record (the campaign itself carries on)."""

    key: str
    label: str
    kind: str  # "error" | "timeout" | "worker-lost"
    error: str
    attempts: int

    def __bool__(self) -> bool:  # failures are falsy: `if result:` reads well
        return False


@dataclass
class _Pending:
    key: str
    task: TaskSpec
    attempt: int = 0  # completed attempts so far
    not_before: float = 0.0  # monotonic time gate (backoff)
    suspect: bool = False  # was in flight when a pool died (probe alone)


def run_tasks(
    items: Sequence[tuple[str, TaskSpec]],
    fn: Callable[[TaskSpec], object] = execute_task,
    config: ExecutorConfig | None = None,
    telemetry: Telemetry | None = None,
) -> dict[str, object]:
    """Execute every (key, task) pair; returns ``key -> result | TaskFailure``.

    ``items`` must already be deduplicated by key (the planner's job).
    """
    config = config or ExecutorConfig()
    telemetry = telemetry or Telemetry(stream=None)
    out: dict[str, object] = {}
    pending = [_Pending(key, task) for key, task in items]
    if config.parallel and pending:
        pending = _run_parallel(pending, fn, config, telemetry, out)
    _run_serial(pending, fn, config, telemetry, out)
    return out


# ----------------------------------------------------------------- serial


def _record_success(
    p: _Pending, result: object, telemetry: Telemetry, out: dict[str, object]
) -> None:
    out[p.key] = result
    obs = run_info_telemetry(result)
    telemetry.task_done(
        p.key,
        p.task.label(),
        getattr(result, "n_quanta", 0),
        metrics=obs.get("metrics"),
        invariants=obs.get("invariants"),
    )


def _record_failure(
    p: _Pending, kind: str, error: str, telemetry: Telemetry, out: dict[str, object]
) -> None:
    out[p.key] = TaskFailure(
        key=p.key, label=p.task.label(), kind=kind, error=error, attempts=p.attempt
    )
    telemetry.task_failed(p.key, p.task.label(), kind, error)


def _run_serial(
    pending: Sequence[_Pending],
    fn: Callable[[TaskSpec], object],
    config: ExecutorConfig,
    telemetry: Telemetry,
    out: dict[str, object],
) -> None:
    """In-process execution (also the degradation path — no preemption)."""
    for p in pending:
        while True:
            p.attempt += 1
            telemetry.task_started(p.key, p.task.label(), p.attempt)
            try:
                result = fn(p.task)
            except Exception as exc:  # noqa: BLE001 — any task error is retryable
                if p.attempt <= config.retries:
                    telemetry.task_retried(p.key, p.task.label(), p.attempt, repr(exc))
                    time.sleep(config.backoff_for(p.attempt))
                    continue
                _record_failure(p, "error", repr(exc), telemetry, out)
            else:
                _record_success(p, result, telemetry, out)
            break


# --------------------------------------------------------------- parallel


def _run_parallel(
    pending: list[_Pending],
    fn: Callable[[TaskSpec], object],
    config: ExecutorConfig,
    telemetry: Telemetry,
    out: dict[str, object],
) -> list[_Pending]:
    """Pool execution; returns tasks left over for the serial fallback."""
    try:
        pool = ProcessPoolExecutor(max_workers=config.max_workers)
    except (OSError, ValueError, NotImplementedError) as exc:
        telemetry.degraded(f"process pool unavailable: {exc!r}")
        return pending
    rebuilds = 0
    in_flight: dict[Future, _Pending] = {}
    try:
        while pending or in_flight:
            now = time.monotonic()
            # While any suspect of a past pool death is unresolved, probe
            # suspects one at a time in otherwise-empty pools: if the pool
            # dies again the lone occupant is the culprit beyond doubt.
            probing = any(p.suspect for p in pending) or any(
                p.suspect for p in in_flight.values()
            )
            window = 1 if probing else config.max_workers
            # Fill the window with backoff-eligible tasks.
            i = 0
            while i < len(pending) and len(in_flight) < window:
                if pending[i].not_before <= now and (
                    pending[i].suspect or not probing
                ):
                    p = pending.pop(i)
                    p.attempt += 1
                    telemetry.task_started(p.key, p.task.label(), p.attempt)
                    p.not_before = now  # reused as submission time
                    in_flight[pool.submit(fn, p.task)] = p
                else:
                    i += 1
            if not in_flight:
                eligible = [p for p in pending if p.suspect or not probing]
                wake = min(p.not_before for p in eligible)
                time.sleep(max(0.0, wake - now) + 0.001)
                continue

            done, timed_out = _wait_step(in_flight, config, now)

            broken = next(
                (
                    f.exception()
                    for f in done
                    if isinstance(f.exception(), BrokenProcessPool)
                ),
                None,
            )
            if broken is not None:
                # The whole in-flight set was poisoned at once.  Alone in
                # the pool ⇒ guilty (charge the attempt); in company ⇒
                # indistinguishable, so refund everyone and mark them
                # suspects for isolated probing.
                victims = list(in_flight.items())
                in_flight.clear()
                for fut, p in victims:
                    fut.cancel()
                    if len(victims) == 1:
                        _retry_or_fail(
                            p, "worker-lost", repr(broken), config, telemetry, out, pending
                        )
                    else:
                        p.attempt -= 1
                        p.suspect = True
                        telemetry.task_retried(
                            p.key, p.task.label(), p.attempt, "worker lost — probing suspects"
                        )
                        pending.append(p)
                pool, rebuilds = _rebuild_pool(pool, rebuilds, config, telemetry)
                if pool is None:
                    return pending
                continue

            for fut in done:
                p = in_flight.pop(fut)
                exc = fut.exception()
                if exc is None:
                    _record_success(p, fut.result(), telemetry, out)
                else:
                    _retry_or_fail(p, "error", repr(exc), config, telemetry, out, pending)
            abandon = False
            for fut in timed_out:
                p = in_flight.pop(fut)
                fut.cancel()
                _retry_or_fail(
                    p, "timeout",
                    f"exceeded {config.timeout_s}s", config, telemetry, out, pending,
                )
                abandon = True  # the worker may still be busy — abandon pool

            if abandon:
                # Survivors restart at no cost to their retry budget (the
                # culprit here is known — the timed-out task — so nobody
                # becomes a suspect either).
                for fut, p in in_flight.items():
                    fut.cancel()
                    p.attempt -= 1
                    telemetry.task_retried(p.key, p.task.label(), p.attempt, "pool reset")
                    pending.append(p)
                in_flight.clear()
                pool, rebuilds = _rebuild_pool(pool, rebuilds, config, telemetry)
                if pool is None:
                    return pending
        return []
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


def _rebuild_pool(
    pool: ProcessPoolExecutor,
    rebuilds: int,
    config: ExecutorConfig,
    telemetry: Telemetry,
) -> tuple[ProcessPoolExecutor | None, int]:
    """Replace a dead/abandoned pool; None means degrade to serial."""
    pool.shutdown(wait=False, cancel_futures=True)
    rebuilds += 1
    if rebuilds > config.max_pool_rebuilds:
        telemetry.degraded(f"pool died {rebuilds} times — finishing serially")
        return None, rebuilds
    try:
        return ProcessPoolExecutor(max_workers=config.max_workers), rebuilds
    except (OSError, ValueError, NotImplementedError) as exc:
        telemetry.degraded(f"pool rebuild failed: {exc!r}")
        return None, rebuilds


def _wait_step(
    in_flight: dict[Future, _Pending], config: ExecutorConfig, now: float
) -> tuple[set[Future], list[Future]]:
    """Wait for progress; returns (completed futures, deadline-expired ones)."""
    if config.timeout_s is None:
        done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
        return done, []
    deadlines = {f: p.not_before + config.timeout_s for f, p in in_flight.items()}
    horizon = max(0.0, min(deadlines.values()) - now) + 0.005
    done, _ = wait(in_flight, timeout=horizon, return_when=FIRST_COMPLETED)
    t = time.monotonic()
    timed_out = [f for f in in_flight if f not in done and deadlines[f] <= t]
    return done, timed_out


def _retry_or_fail(
    p: _Pending,
    kind: str,
    error: str,
    config: ExecutorConfig,
    telemetry: Telemetry,
    out: dict[str, object],
    pending: list[_Pending],
) -> None:
    if p.attempt <= config.retries:
        telemetry.task_retried(p.key, p.task.label(), p.attempt, error)
        p.not_before = time.monotonic() + config.backoff_for(p.attempt)
        pending.append(p)
    else:
        _record_failure(p, kind, error, telemetry, out)
