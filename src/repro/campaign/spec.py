"""Declarative simulation tasks: everything a worker process needs.

A :class:`TaskSpec` is a frozen, picklable, JSON-able description of one
``run_workload`` invocation — workload, policy, policy parameters, seed
and simulator parameters — with **no live objects** (schedulers are
stateful, topologies carry NumPy arrays).  Workers rebuild the live
objects from the spec via :func:`execute_task`, which is the *only*
execution path of the campaign subsystem; the spec's canonical dict
(:meth:`TaskSpec.to_dict`) is what the cache key hashes.

Policies are referenced by their `repro.policies` registry name;
parameters are passed as a sorted tuple of ``(key, value)`` pairs so
equal parameterisations compare and hash equal regardless of
construction order.  Parameters are *validated* against the policy's
declarative schema when the spec is built (out-of-bounds values fail at
planning time, in the submitting process) but stored raw — the cache key
hashes exactly the values the caller supplied, never a coerced form, so
historical cache entries stay addressable.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.policies import REGISTRY
from repro.schedulers.base import Scheduler
from repro.sim.migration import MigrationModel
from repro.sim.results import RunResult
from repro.sim.topology import Topology
from repro.topologies import TOPOLOGY_REGISTRY
from repro.util.rng import DEFAULT_SEED
from repro.util.validation import require
from repro.workloads.suite import WorkloadSpec

__all__ = [
    "WorkloadRef",
    "SimParams",
    "TaskSpec",
    "KNOWN_POLICIES",
    "TOPOLOGIES",
    "build_scheduler",
    "build_topology",
    "execute_task",
]

#: Policy names the campaign layer can instantiate — an import-time
#: snapshot of the registry (kept as a tuple for backward compatibility;
#: the registry itself is the source of truth).
KNOWN_POLICIES: tuple[str, ...] = REGISTRY.names()


def __getattr__(name: str):
    # Deprecated: the topology name table moved into the topology registry
    # (`repro.topologies.TOPOLOGY_REGISTRY`); this shim keeps the old
    # ``TOPOLOGIES`` mapping importable.
    if name == "TOPOLOGIES":
        warnings.warn(
            "repro.campaign.TOPOLOGIES is deprecated; resolve topology "
            "names through repro.topologies.TOPOLOGY_REGISTRY",
            DeprecationWarning,
            stacklevel=2,
        )
        return {spec.name: spec.factory for spec in TOPOLOGY_REGISTRY}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class WorkloadRef:
    """A workload by value: the four `WorkloadSpec` fields, nothing more.

    Suite workloads (``wl1`` .. ``wl16``) and ad-hoc specs (standalone
    runs, test workloads) serialise identically — the reference carries
    the full recipe, so a worker process can rebuild the spec without any
    registry lookup.

    Open-system workloads add ``arrivals`` (one arrival time per entry of
    ``apps``, which then lists each *job's* application in order) and
    optionally ``sizes`` (per-job work multipliers); both serialise only
    when set, so closed workloads keep their historical cache keys.
    """

    name: str
    apps: tuple[str, ...]
    include_kmeans: bool = True
    threads_per_app: int = 8
    arrivals: tuple[float, ...] = ()
    sizes: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.arrivals:
            require(
                len(self.arrivals) == len(self.apps),
                "arrivals must align 1:1 with apps",
            )
            require(
                not self.include_kmeans,
                "open-system workloads carry no implicit kmeans instance",
            )
        if self.sizes:
            require(
                len(self.sizes) == len(self.apps),
                "sizes must align 1:1 with apps",
            )
            require(bool(self.arrivals), "sizes require arrivals")

    @classmethod
    def from_spec(cls, spec: WorkloadSpec) -> "WorkloadRef":
        return cls(
            name=spec.name,
            apps=tuple(spec.apps),
            include_kmeans=spec.include_kmeans,
            threads_per_app=spec.threads_per_app,
        )

    @classmethod
    def from_traffic(cls, workload) -> "WorkloadRef":
        """Reference an open-system `repro.traffic.TrafficWorkload`.

        Jobs must share one thread count (the grid path generates uniform
        jobs); per-job sizes are kept only when any differ from 1.0.
        """
        jobs = workload.jobs
        threads = {j.n_threads for j in jobs}
        require(
            len(threads) == 1,
            "campaign traffic workloads need a uniform per-job thread count",
        )
        sizes = tuple(j.size for j in jobs)
        return cls(
            name=workload.name,
            apps=tuple(j.app for j in jobs),
            include_kmeans=False,
            threads_per_app=threads.pop(),
            arrivals=tuple(j.arrival_s for j in jobs),
            sizes=sizes if any(s != 1.0 for s in sizes) else (),
        )

    def to_spec(self):
        if self.arrivals:
            # Late import: repro.traffic depends on repro.workloads, which
            # sits below this module; importing it lazily keeps the
            # campaign package import-order agnostic.
            from repro.traffic.replay import TrafficWorkload
            from repro.traffic.trace import Job

            sizes = self.sizes or (1.0,) * len(self.apps)
            return TrafficWorkload(
                name=self.name,
                jobs=tuple(
                    Job(
                        i,
                        app,
                        arrival,
                        n_threads=self.threads_per_app,
                        size=size,
                    )
                    for i, (app, arrival, size) in enumerate(
                        zip(self.apps, self.arrivals, sizes)
                    )
                ),
            )
        return WorkloadSpec(
            name=self.name,
            apps=self.apps,
            include_kmeans=self.include_kmeans,
            threads_per_app=self.threads_per_app,
        )

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "apps": list(self.apps),
            "include_kmeans": self.include_kmeans,
            "threads_per_app": self.threads_per_app,
        }
        # Only present when set, preserving historical closed-system keys.
        if self.arrivals:
            out["arrivals"] = list(self.arrivals)
        if self.sizes:
            out["sizes"] = list(self.sizes)
        return out


@dataclass(frozen=True)
class SimParams:
    """Simulator-side parameters of a task (everything `run_workload`
    accepts beyond workload/scheduler/seed).

    ``migration`` is the optional ``(swap_overhead_s, warmup_work,
    warmup_miss_scale)`` triple of a non-default `MigrationModel` (the
    ablation benches sweep it); ``None`` means the engine default.

    ``llc`` names the shared-LLC backend (`repro.sim.llc`, e.g.
    ``"occupancy"``); ``None`` is the default ``NullLLC`` and is omitted
    from the canonical dict, so pre-LLC cache keys stay addressable.

    ``topology`` resolves through `repro.topologies.TOPOLOGY_REGISTRY`
    (unknown names raise ``UnknownTopologyError``, a ``ValueError``);
    ``topology_params`` customises the named preset and is validated
    against its declarative schema — stored raw and serialised only when
    set, so default-machine cache keys stay addressable.
    """

    work_scale: float = 1.0
    topology: str = "heterogeneous"
    counter_noise: float = 0.06
    max_time_s: float = 36_000.0
    record_timeseries: bool = False
    migration: tuple[float, float, float] | None = None
    llc: str | None = None
    topology_params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        spec = TOPOLOGY_REGISTRY.get(self.topology)
        spec.validate_params(dict(self.topology_params))
        # Normalise parameter order so logically equal params hash equal.
        object.__setattr__(
            self, "topology_params", tuple(sorted(self.topology_params))
        )
        if self.llc is not None:
            from repro.sim.llc import LLC_MODELS

            require(
                self.llc in LLC_MODELS,
                f"unknown llc model {self.llc!r}; known: {sorted(LLC_MODELS)}",
            )

    def to_dict(self) -> dict:
        out = {
            "work_scale": self.work_scale,
            "topology": self.topology,
            "counter_noise": self.counter_noise,
            "max_time_s": self.max_time_s,
            "record_timeseries": self.record_timeseries,
            "migration": list(self.migration) if self.migration else None,
        }
        # Only present when set, preserving historical cache keys.
        if self.llc is not None:
            out["llc"] = self.llc
        if self.topology_params:
            out["topology_params"] = [[k, v] for k, v in self.topology_params]
        return out


@dataclass(frozen=True)
class TaskSpec:
    """One simulation: ``(workload, policy(+params), seed, sim params)``.

    ``invariants=True`` makes the worker attach a zero-file-I/O
    :class:`~repro.obs.invariants.InvariantSink` carrying the policy's
    contract (its registry spec's ``invariants`` tuple) for the whole
    run and stamp its digest into ``RunResult.info["invariants"]``.  The
    flag is part of the cache key (only when set, so pre-existing cached
    results keep their keys): an invariant-checked result carries extra
    information, and a cache hit on it can replay the recorded counts.
    """

    workload: WorkloadRef
    policy: str
    seed: int = DEFAULT_SEED
    policy_params: tuple[tuple[str, object], ...] = ()
    sim: SimParams = field(default_factory=SimParams)
    invariants: bool = False
    #: open-loop task: the worker stamps p50/p95/p99 job-slowdown metrics
    #: into ``RunResult.info["traffic"]`` before the result is cached
    traffic: bool = False

    def __post_init__(self) -> None:
        # Resolves through the registry: unknown names raise
        # UnknownPolicyError (a ValueError), and parameters are checked
        # against the policy's schema — but stored raw, never coerced,
        # so cache keys hash the caller's exact values.
        spec = REGISTRY.get(self.policy)
        spec.validate_params(dict(self.policy_params))
        # Normalise parameter order so logically equal tasks hash equal.
        object.__setattr__(
            self, "policy_params", tuple(sorted(self.policy_params))
        )

    @classmethod
    def for_workload(
        cls,
        spec: WorkloadSpec,
        policy: str,
        seed: int = DEFAULT_SEED,
        policy_params: Mapping[str, object] | None = None,
        sim: SimParams | None = None,
        invariants: bool = False,
    ) -> "TaskSpec":
        """Deprecated: build a `repro.spec.ExperimentSpec` instead.

        Kept as a shim delegating to the composable spec layer; the
        produced task (and hence its cache key) is identical.
        """
        warnings.warn(
            "TaskSpec.for_workload() is deprecated; build "
            "repro.spec.ExperimentSpec.for_workload(...) instead "
            "(Campaign.gather accepts it directly)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.spec import ExperimentSpec

        return ExperimentSpec.for_workload(
            spec,
            policy,
            seed=seed,
            policy_params=policy_params,
            sim=sim,
            invariants=invariants,
        ).to_task()

    @classmethod
    def for_traffic(
        cls,
        workload,
        policy: str,
        seed: int = DEFAULT_SEED,
        policy_params: Mapping[str, object] | None = None,
        sim: SimParams | None = None,
        invariants: bool = False,
    ) -> "TaskSpec":
        """Deprecated: build `repro.spec.ExperimentSpec.for_traffic` instead.

        Kept as a shim delegating to the composable spec layer; the
        produced task (and hence its cache key) is identical.
        """
        warnings.warn(
            "TaskSpec.for_traffic() is deprecated; build "
            "repro.spec.ExperimentSpec.for_traffic(...) instead "
            "(Campaign.gather accepts it directly)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.spec import ExperimentSpec

        return ExperimentSpec.for_traffic(
            workload,
            policy,
            seed=seed,
            policy_params=policy_params,
            sim=sim,
            invariants=invariants,
        ).to_task()

    @property
    def params(self) -> dict[str, object]:
        return dict(self.policy_params)

    def to_dict(self) -> dict:
        """Canonical plain-dict form — the input of the cache key."""
        out = {
            "workload": self.workload.to_dict(),
            "policy": self.policy,
            "policy_params": [[k, v] for k, v in self.policy_params],
            "seed": self.seed,
            "sim": self.sim.to_dict(),
        }
        # Only present when set, so plain tasks keep their historical
        # cache keys; invariant-checked results are distinct entries.
        if self.invariants:
            out["invariants"] = True
        if self.traffic:
            out["traffic"] = True
        return out

    def label(self) -> str:
        """Short human-readable id for telemetry lines."""
        extra = ""
        if self.policy_params:
            extra = "{" + ",".join(f"{k}={v}" for k, v in self.policy_params) + "}"
        return f"{self.workload.name}/{self.policy}{extra}@s{self.seed}"


def build_scheduler(policy: str, params: Mapping[str, object] | None = None) -> Scheduler:
    """Deprecated: use ``repro.policies.REGISTRY.build(name, params)``.

    Kept as a shim so pre-registry call sites keep working; unknown
    names still raise :class:`~repro.policies.UnknownPolicyError`
    (a ``ValueError``).
    """
    warnings.warn(
        "build_scheduler() is deprecated; resolve policy names through "
        "repro.policies.REGISTRY.build(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return REGISTRY.build(policy, params)


def build_topology(name: str) -> Topology:
    """Deprecated: use ``repro.topologies.TOPOLOGY_REGISTRY.build(name)``.

    Kept as a shim so pre-registry call sites keep working; unknown names
    still raise a ``ValueError`` (``UnknownTopologyError``).
    """
    warnings.warn(
        "build_topology() is deprecated; resolve topology names through "
        "repro.topologies.TOPOLOGY_REGISTRY.build(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return TOPOLOGY_REGISTRY.build(name)


def execute_task(task: TaskSpec, trace_dir: str | None = None) -> RunResult:
    """Run one task to completion (the worker-process entry point).

    Module-level (picklable) and dependent only on the spec's value, so
    the same task executes identically in-process and in a pool worker.
    With ``task.invariants`` the run carries a zero-file-I/O
    :class:`~repro.obs.invariants.InvariantSink` with the policy's
    contract; its digest lands in ``RunResult.info["invariants"]``.
    ``trace_dir`` (a side effect, never part of the cache key — bind it
    with :func:`functools.partial`) additionally writes the run's JSONL
    event trace to ``<trace_dir>/<label>.jsonl``.
    """
    # Imported here rather than at module top: experiments.runner is also
    # imported *by* the experiment modules that import this package, and a
    # late import keeps the package import-order agnostic.
    from repro.experiments.runner import run_workload

    sim = task.sim
    migration = MigrationModel(*sim.migration) if sim.migration else None

    attachment = None
    if task.invariants or trace_dir is not None:
        from repro.obs.attach import attach

        trace_path = None
        if trace_dir is not None:
            safe = task.label().replace("/", "_").replace("@", "_")
            trace_path = str(Path(trace_dir) / f"{safe}.jsonl")
        swap_size = task.params.get("swap_size")
        attachment = attach(
            trace=trace_path,
            invariants=task.policy if task.invariants else None,
            swap_size=swap_size if isinstance(swap_size, int) else None,
        )

    result = run_workload(
        task.workload.to_spec(),
        REGISTRY.build(task.policy, task.params),
        seed=task.seed,
        work_scale=sim.work_scale,
        topology=TOPOLOGY_REGISTRY.build(sim.topology, dict(sim.topology_params)),
        migration=migration,
        record_timeseries=sim.record_timeseries,
        counter_noise=sim.counter_noise,
        max_time_s=sim.max_time_s,
        bus=attachment.bus if attachment is not None else None,
        llc=sim.llc,
    )
    if attachment is not None:
        attachment.close()
        attachment.finalize(result)
    if task.traffic:
        from repro.traffic.tracker import summarize_result

        result.info["traffic"] = summarize_result(  # type: ignore[index]
            result,
            work_scale=sim.work_scale,
            topology=sim.topology,
            seed=task.seed,
            topology_params=sim.topology_params,
        ).to_dict()
    return result
