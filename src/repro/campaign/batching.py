"""Campaign-side batching: group eligible tasks, run them in one engine.

The batched engine (`repro.sim.batch`) amortises per-quantum Python
overhead across independent runs, but it only pays off when the campaign
layer feeds it *groups* of compatible tasks.  This module is that glue:

* :func:`batchable` — the eligibility rule.  A task can join a batch when
  nothing about it needs the scalar per-run loop: no LLC model (the flat
  kernels do not model the cache hierarchy), no invariant contract and no
  per-task trace sink (both attach per-run observers whose per-quantum
  cost would defeat the batching anyway), no per-quantum timeseries.
* :func:`plan_batches` — groups eligible ``(key, task)`` pairs by batch
  signature (policy + parameters, topology, migration model, scenario
  shape) and chunks each group into :class:`BatchTask` units of at most
  ``max_batch`` members.  Ineligible tasks and singleton groups pass
  through as plain scalar units, preserving first-seen order.
* :func:`execute_batch` / :func:`execute_unit` — the worker entry points.
  A batch builds one engine per member (exactly as
  :func:`~repro.campaign.spec.execute_task` would) and runs them through
  a :class:`~repro.sim.batch.BatchEngine`; on *any* batch-level error it
  falls back transparently to scalar per-member execution, so a batch can
  only fail if the individual tasks fail.

Batching changes execution strategy only: per-run results, cache keys and
cached bytes are identical either way (gated in CI by running a mixed
campaign both ways and comparing the stores).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.campaign.spec import (
    TaskSpec,
    execute_task,
)
from repro.policies import REGISTRY
from repro.sim.results import RunResult
from repro.topologies import TOPOLOGY_REGISTRY

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "BatchTask",
    "BatchResult",
    "batchable",
    "batch_signature",
    "plan_batches",
    "execute_batch",
    "execute_unit",
]

#: Largest number of runs stepped by one worker's BatchEngine.  Past this
#: size the flat kernels stop gaining (memory traffic dominates) while
#: scheduling granularity and retry blast radius get worse.
DEFAULT_BATCH_SIZE = 32


@dataclass(frozen=True)
class BatchTask:
    """One executor unit bundling several compatible tasks.

    Duck-types the slice of ``TaskSpec`` the executor uses (``label()``
    plus picklability), so it flows through
    :func:`~repro.campaign.executor.run_tasks` unchanged.
    """

    items: tuple[tuple[str, TaskSpec], ...]

    @property
    def keys(self) -> tuple[str, ...]:
        return tuple(k for k, _ in self.items)

    @property
    def tasks(self) -> tuple[TaskSpec, ...]:
        return tuple(t for _, t in self.items)

    def label(self) -> str:
        first = self.items[0][1]
        seeds = [t.seed for _, t in self.items]
        return (
            f"batch[{len(self.items)}]:{first.workload.name}/{first.policy}"
            f"@s{min(seeds)}..s{max(seeds)}"
        )


@dataclass(frozen=True)
class BatchResult:
    """Per-member results of one executed batch, keyed by cache key.

    ``n_quanta`` aggregates the members so executor telemetry (which reads
    the attribute generically) reports real work for batch units.
    """

    results: dict[str, RunResult]
    n_quanta: int
    #: True when the batch engine failed and members ran scalar instead
    fallback: bool = False


def batchable(task: TaskSpec) -> bool:
    """Whether ``task`` may run inside a batch (see module docstring)."""
    if not isinstance(task, TaskSpec) and hasattr(task, "to_task"):
        task = task.to_task()
    return (
        task.sim.llc is None
        and not task.invariants
        and not task.sim.record_timeseries
    )


def batch_signature(task: TaskSpec) -> tuple:
    """Group key: tasks sharing it can run in one ``BatchEngine``.

    Policy family (name + parameters), machine model (topology name and
    migration triple — both enter the shared flat kernels) and scenario
    shape (per-job thread count, job count, open/closed).  Seeds, work
    scales, workload names and arrival processes may differ freely within
    a group; the engine supports ragged thread counts, but grouping by
    shape keeps lane lengths similar so stragglers don't serialise the
    batch.
    """
    if not isinstance(task, TaskSpec) and hasattr(task, "to_task"):
        task = task.to_task()
    wl = task.workload
    return (
        task.policy,
        task.policy_params,
        task.sim.topology,
        task.sim.topology_params,
        task.sim.migration,
        task.sim.counter_noise,
        wl.threads_per_app,
        len(wl.apps),
        bool(wl.arrivals),
    )


def plan_batches(
    items: Sequence[tuple[str, TaskSpec]],
    max_batch: int = DEFAULT_BATCH_SIZE,
) -> list[tuple[str, TaskSpec | BatchTask]]:
    """Group ``(key, task)`` pairs into executor units.

    Eligible tasks with a shared :func:`batch_signature` merge into
    :class:`BatchTask` units of at most ``max_batch`` members; everything
    else (ineligible tasks, singleton groups) stays a scalar unit.  Units
    keep the first-seen order of their first member.
    """
    groups: dict[tuple, list[tuple[str, TaskSpec]]] = {}
    order: list[tuple[str, object]] = []  # (kind, payload) in input order
    for key, task in items:
        if not batchable(task):
            order.append(("scalar", (key, task)))
            continue
        sig = batch_signature(task)
        if sig not in groups:
            groups[sig] = []
            order.append(("group", sig))
        groups[sig].append((key, task))

    units: list[tuple[str, TaskSpec | BatchTask]] = []
    for kind, payload in order:
        if kind == "scalar":
            units.append(payload)  # type: ignore[arg-type]
            continue
        members = groups[payload]  # type: ignore[index]
        if len(members) == 1:
            units.append(members[0])
            continue
        for i in range(0, len(members), max_batch):
            chunk = tuple(members[i : i + max_batch])
            if len(chunk) == 1:
                units.append(chunk[0])
            else:
                # The unit key only needs uniqueness and determinism; the
                # member cache keys inside are what the campaign persists.
                units.append((f"batch:{chunk[0][0]}", BatchTask(items=chunk)))
    return units


def _build_engine(task: TaskSpec):
    """One lane, wired exactly as ``execute_task``/``run_workload`` wire a
    scalar run (no observers: batchable tasks have none)."""
    from repro.sim.engine import SimulationEngine
    from repro.sim.migration import MigrationModel

    sim = task.sim
    spec = task.workload.to_spec()
    groups = spec.build(seed=task.seed, work_scale=sim.work_scale)
    return SimulationEngine(
        topology=TOPOLOGY_REGISTRY.build(sim.topology, dict(sim.topology_params)),
        groups=groups,
        scheduler=REGISTRY.build(task.policy, task.params),
        migration=MigrationModel(*sim.migration) if sim.migration else None,
        seed=task.seed,
        counter_noise=sim.counter_noise,
        max_time_s=sim.max_time_s,
        record_timeseries=sim.record_timeseries,
        workload_name=spec.name,
    )


def _stamp_traffic(task: TaskSpec, result: RunResult) -> None:
    # Mirrors the tail of execute_task for open-loop tasks.
    from repro.traffic.tracker import summarize_result

    result.info["traffic"] = summarize_result(  # type: ignore[index]
        result,
        work_scale=task.sim.work_scale,
        topology=task.sim.topology,
        seed=task.seed,
        topology_params=task.sim.topology_params,
    ).to_dict()


def execute_batch(batch: BatchTask) -> BatchResult:
    """Run one batch in-process (the worker entry point for batch units).

    Builds a lane per member and steps them through one
    :class:`~repro.sim.batch.BatchEngine`.  Any failure at the batch level
    — incompatible lanes, an engine bug, a policy the flat kernels cannot
    host — falls back to scalar per-member execution, so batching is never
    the reason a task fails.
    """
    from repro.sim.batch import BatchEngine

    try:
        engines = [_build_engine(task) for task in batch.tasks]
        run_results = BatchEngine(engines).run()
        results: dict[str, RunResult] = {}
        for (key, task), result in zip(batch.items, run_results):
            if task.traffic:
                _stamp_traffic(task, result)
            results[key] = result
        fallback = False
    except Exception:
        results = {key: execute_task(task) for key, task in batch.items}
        fallback = True
    return BatchResult(
        results=results,
        n_quanta=sum(r.n_quanta for r in results.values()),
        fallback=fallback,
    )


def execute_unit(
    unit: TaskSpec | BatchTask, trace_dir: str | None = None
) -> RunResult | BatchResult:
    """Dispatch one executor unit: scalar task or batch."""
    if isinstance(unit, BatchTask):
        return execute_batch(unit)
    return execute_task(unit, trace_dir=trace_dir)
