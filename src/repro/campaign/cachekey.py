"""Content-addressed cache keys for simulation tasks.

The key is a SHA-256 over the canonical JSON of the task's value —
workload recipe, policy + parameters, seed, simulator parameters — plus
the result-schema version (`SCHEMA_VERSION`): simulations are
deterministic functions of exactly these inputs, so two tasks with equal
keys produce bitwise-identical results and may share one cached artifact.

Stability notes:

* ``json.dumps(..., sort_keys=True)`` with explicit separators is the
  canonical form; Python's shortest-repr float formatting is itself
  deterministic, so float parameters serialise stably.
* The schema version is hashed **into** the key (not just stored next to
  the artifact) so a version bump orphans old entries outright — a cache
  directory can safely outlive many code revisions.
* ``record_timeseries`` is excluded: it toggles trace *recording* only
  (never simulation dynamics) and traces are not cached, so both variants
  of a task share one artifact.
"""

from __future__ import annotations

import hashlib
import json

from repro.campaign.spec import TaskSpec
from repro.experiments.serialization import SCHEMA_VERSION

__all__ = ["task_fingerprint", "cache_key"]


def task_fingerprint(task: TaskSpec) -> dict:
    """The exact dict whose canonical JSON is hashed.

    Also accepts anything exposing ``to_task()`` (an
    `repro.spec.ExperimentSpec`): the fingerprint is *defined* over the
    legacy `TaskSpec` canonical dict, so the composable spec layer maps
    onto byte-identical historical cache keys.
    """
    if not isinstance(task, TaskSpec) and hasattr(task, "to_task"):
        task = task.to_task()
    d = task.to_dict()
    d["sim"] = {k: v for k, v in d["sim"].items() if k != "record_timeseries"}
    d["schema_version"] = SCHEMA_VERSION
    return d


def cache_key(task: TaskSpec) -> str:
    """Stable hex digest identifying a task's result."""
    canonical = json.dumps(
        task_fingerprint(task),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
