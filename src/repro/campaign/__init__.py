"""Campaign orchestration: parallel, cached, fault-tolerant experiments.

The subsystem behind every figure/table regeneration and the
``repro campaign`` CLI verb:

* `spec` — declarative, picklable task descriptions + worker entry point;
* `cachekey` — content-addressed keys over (workload, policy+params,
  seed, sim params, schema version);
* `store` — on-disk JSON artifact store with a JSONL index;
* `executor` — process-pool execution with per-task timeouts, bounded
  retries with backoff, and graceful degradation to serial;
* `planner` — grid specs expanded into deduplicated task lists;
* `telemetry` — structured progress events (stderr + JSONL);
* `core` — the `Campaign` facade gluing the above together.

See ``docs/campaign.md`` for the architecture walk-through.
"""

from repro.campaign.cachekey import cache_key, task_fingerprint
from repro.campaign.core import Campaign, CampaignError
from repro.campaign.executor import ExecutorConfig, TaskFailure, run_tasks
from repro.campaign.planner import CampaignPlan, CampaignSpec, dedupe, plan
from repro.campaign.spec import (
    KNOWN_POLICIES,
    SimParams,
    TaskSpec,
    WorkloadRef,
    build_scheduler,
    build_topology,
    execute_task,
)
from repro.campaign.store import ResultStore
from repro.campaign.telemetry import Telemetry

__all__ = [
    "Campaign",
    "CampaignError",
    "CampaignPlan",
    "CampaignSpec",
    "ExecutorConfig",
    "KNOWN_POLICIES",
    "ResultStore",
    "SimParams",
    "TaskFailure",
    "TaskSpec",
    "Telemetry",
    "WorkloadRef",
    "build_scheduler",
    "build_topology",
    "cache_key",
    "dedupe",
    "execute_task",
    "plan",
    "run_tasks",
    "task_fingerprint",
]
