"""On-disk, content-addressed result store.

Layout under the store root::

    objects/<key[:2]>/<key>.json    one full-fidelity RunResult each
    index.jsonl                     append-only metadata, one line per put

Artifacts are written atomically (tmp file + ``os.replace``) so a killed
campaign never leaves a truncated object behind, and reads validate the
schema version — a stale or undecodable artifact is a *miss*, never an
error.  The JSONL index exists for humans and tooling (``wc -l``, grep by
workload/policy); the objects directory alone is authoritative.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.campaign.spec import TaskSpec
from repro.experiments.serialization import (
    run_result_from_dict,
    run_result_to_full_dict,
)
from repro.sim.results import RunResult

__all__ = ["ResultStore"]


class ResultStore:
    """Cache of finished runs keyed by :func:`repro.campaign.cachekey.cache_key`."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()
        self.objects = self.root / "objects"
        self.index_path = self.root / "index.jsonl"
        self.objects.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------- lookup

    def _object_path(self, key: str) -> Path:
        return self.objects / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._object_path(key).is_file()

    def get(self, key: str) -> RunResult | None:
        """The cached result for ``key``, or None (also on stale schema
        or a corrupt artifact — cache problems degrade to recomputation)."""
        path = self._object_path(key)
        if not path.is_file():
            return None
        try:
            return run_result_from_dict(json.loads(path.read_text()))
        except (ValueError, KeyError, TypeError, json.JSONDecodeError, OSError):
            return None

    # -------------------------------------------------------------- write

    def put(self, key: str, result: RunResult, task: TaskSpec | None = None) -> Path:
        """Persist one result atomically and append an index line.

        The volatile ``info["traffic"]["baseline_cache"]`` hit counters
        (process-history-dependent observability, not a property of the
        run) are stripped from the artifact so cached bytes stay
        deterministic across execution strategies and worker layouts.
        """
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = run_result_to_full_dict(result)
        info = doc.get("info")
        if isinstance(info, dict) and isinstance(info.get("traffic"), dict):
            traffic = dict(info["traffic"])
            traffic.pop("baseline_cache", None)
            doc = dict(doc)
            doc["info"] = dict(info)
            doc["info"]["traffic"] = traffic
        payload = json.dumps(doc, sort_keys=True, allow_nan=False)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(payload)
        os.replace(tmp, path)
        entry = {
            "key": key,
            "workload": result.workload_name,
            "policy": result.policy_name,
            "seed": result.seed,
            "n_quanta": result.n_quanta,
            "bytes": len(payload),
        }
        if task is not None:
            entry["label"] = task.label()
        with self.index_path.open("a") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
        return path

    # ------------------------------------------------------------- admin

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self.objects.glob("*/*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self.objects.glob("*/*.json"))
