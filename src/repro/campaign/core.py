"""The campaign facade: cache-aware, parallel, order-preserving `gather`.

A :class:`Campaign` ties the subsystem together: the planner's dedup, the
content-addressed :class:`~repro.campaign.store.ResultStore`, the
fault-tolerant executor and the telemetry stream.  Experiment modules
build task lists and call :meth:`Campaign.gather`; everything else —
dedup, cache lookup, parallel execution, persistence, resumability — is
this class's concern.

Resumability falls out of the design: a rerun of a partially completed
campaign plans the same keys, finds the finished ones in the store, and
executes only the remainder.

``Campaign.inline()`` is the zero-infrastructure instance (serial, no
disk cache, silent) that experiment runners default to, so every figure
module keeps working stand-alone; an in-memory memo still dedups repeat
tasks *within* the process (e.g. the CFS baselines the ablation benches
share).
"""

from __future__ import annotations

from dataclasses import replace
from functools import partial
from pathlib import Path
from typing import Sequence

from repro.campaign.batching import (
    BatchResult,
    BatchTask,
    execute_unit,
    plan_batches,
)
from repro.campaign.cachekey import cache_key
from repro.campaign.executor import ExecutorConfig, TaskFailure, run_tasks
from repro.campaign.spec import TaskSpec, execute_task
from repro.campaign.store import ResultStore
from repro.campaign.telemetry import Telemetry
from repro.obs.attach import run_info_telemetry
from repro.sim.results import RunResult

__all__ = ["Campaign", "CampaignError"]


class CampaignError(RuntimeError):
    """Raised by strict gathers when tasks failed after all retries."""

    def __init__(self, failures: Sequence[TaskFailure]) -> None:
        self.failures = tuple(failures)
        detail = "; ".join(
            f"{f.label} [{f.kind} after {f.attempts} attempts]: {f.error}"
            for f in self.failures[:5]
        )
        more = f" (+{len(self.failures) - 5} more)" if len(self.failures) > 5 else ""
        super().__init__(f"{len(self.failures)} task(s) failed: {detail}{more}")


class Campaign:
    """Executes task specs through cache + pool; results come back in order."""

    def __init__(
        self,
        store: ResultStore | None = None,
        executor: ExecutorConfig | None = None,
        telemetry: Telemetry | None = None,
        invariants: bool = False,
        trace_dir: str | Path | None = None,
        batch: bool = False,
    ) -> None:
        self.store = store
        self.executor = executor or ExecutorConfig()
        self.telemetry = telemetry or Telemetry(stream=None)
        #: check the policy contract inside every worker
        #: (``repro.obs.attach(campaign, invariants=True)`` sets this too)
        self.invariants = invariants
        #: write each *executed* task's JSONL event trace here (a side
        #: effect: never part of the cache key, so cache hits skip it)
        self.trace_dir = str(trace_dir) if trace_dir is not None else None
        #: group compatible cache misses into multi-run batch units for the
        #: vectorized engine (`repro.sim.batch`); results, cache keys and
        #: cached bytes are identical either way.  Ignored while a
        #: ``trace_dir`` is set — tracing needs the scalar per-run path.
        self.batch = batch
        #: in-process memo; also what makes cache hits repeat-stable when
        #: no disk store is configured
        self._memo: dict[str, RunResult] = {}

    # ---------------------------------------------------------- factories

    @classmethod
    def inline(cls) -> "Campaign":
        """Serial, memory-only, silent — the default for direct calls."""
        return cls()

    @classmethod
    def at(
        cls,
        cache_dir: str | Path,
        max_workers: int = 2,
        timeout_s: float | None = None,
        retries: int = 2,
        telemetry: Telemetry | None = None,
        invariants: bool = False,
        trace_dir: str | Path | None = None,
        batch: bool = False,
    ) -> "Campaign":
        """A production campaign: disk cache under ``cache_dir`` + pool."""
        return cls(
            store=ResultStore(cache_dir),
            executor=ExecutorConfig(
                max_workers=max_workers, timeout_s=timeout_s, retries=retries
            ),
            telemetry=telemetry,
            invariants=invariants,
            trace_dir=trace_dir,
            batch=batch,
        )

    # ------------------------------------------------------------- gather

    def gather(
        self, tasks: Sequence[TaskSpec], strict: bool = True
    ) -> list[RunResult | TaskFailure]:
        """Resolve every task, in input order (duplicates share one run).

        Cache hits (memo, then disk) never re-execute; misses run through
        the executor and are persisted.  With ``strict`` (the default for
        figure assembly) any terminal failure raises :class:`CampaignError`;
        with ``strict=False`` failures come back as :class:`TaskFailure`
        entries so a campaign sweep can report them and move on.

        With ``self.invariants`` every task is upgraded to its
        invariant-checked form before key computation, so checked results
        are distinct cache entries — and a cache hit on one *replays* the
        recorded violation digest into telemetry instead of reporting
        zero for skipped work.

        Accepts `repro.spec.ExperimentSpec` entries interchangeably with
        legacy `TaskSpec`s — specs normalise to their `TaskSpec` image at
        this boundary (identical cache keys, see `ExperimentSpec.to_task`),
        so the executor path stays picklable and unchanged.
        """
        tasks = [
            t if isinstance(t, TaskSpec) else t.to_task() for t in tasks
        ]
        if self.invariants:
            tasks = [
                t if t.invariants else replace(t, invariants=True)
                for t in tasks
            ]
        keys = [cache_key(t) for t in tasks]
        unique: dict[str, TaskSpec] = {}
        for key, task in zip(keys, tasks):
            unique.setdefault(key, task)
        self.telemetry.tasks_planned(len(tasks), len(unique))

        resolved: dict[str, RunResult | TaskFailure] = {}
        to_run: list[tuple[str, TaskSpec]] = []
        for key, task in unique.items():
            hit = self._lookup(key)
            if hit is not None:
                resolved[key] = hit
                self.telemetry.cache_hit(
                    key,
                    task.label(),
                    invariants=run_info_telemetry(hit).get("invariants"),
                )
            else:
                to_run.append((key, task))

        if to_run:
            if self.batch and self.trace_dir is None:
                units: list[tuple[str, TaskSpec | BatchTask]] = plan_batches(to_run)
                fn = execute_unit
                folded = len(to_run) - len(units)
                if folded:
                    # Progress accounting is per executor *unit*; fold the
                    # batched-away members out of the queued gauge so the
                    # live line still reaches zero.
                    self.telemetry.queued -= folded
                    self.telemetry.emit(
                        "batched", tasks=len(to_run), units=len(units)
                    )
            elif self.trace_dir is not None:
                units = list(to_run)
                fn = partial(execute_task, trace_dir=self.trace_dir)
            else:
                units = list(to_run)
                fn = execute_task
            executed = run_tasks(
                units, fn=fn, config=self.executor, telemetry=self.telemetry
            )
            for unit_key, result in executed.items():
                for key, member in self._unpack(unit_key, units, result):
                    resolved[key] = member
                    if isinstance(member, RunResult):
                        self._memo[key] = member
                        if self.store is not None:
                            self.store.put(key, member, unique[key])

        if strict:
            failures = [r for r in resolved.values() if isinstance(r, TaskFailure)]
            if failures:
                raise CampaignError(failures)
        return [resolved[key] for key in keys]

    def run(self, task: TaskSpec) -> RunResult:
        """Resolve a single task (strict)."""
        return self.gather([task])[0]

    # ------------------------------------------------------------ private

    @staticmethod
    def _unpack(
        unit_key: str,
        units: Sequence[tuple[str, TaskSpec | BatchTask]],
        result: RunResult | BatchResult | TaskFailure,
    ) -> list[tuple[str, RunResult | TaskFailure]]:
        """Flatten one executor unit's outcome to per-member entries."""
        if isinstance(result, BatchResult):
            return list(result.results.items())
        if not isinstance(result, TaskFailure):
            return [(unit_key, result)]
        # A failed unit: if it was a batch, every member inherits the
        # failure (with its own key/label) so callers see per-task errors.
        unit = next((u for k, u in units if k == unit_key), None)
        if isinstance(unit, BatchTask):
            return [
                (key, replace(result, key=key, label=task.label()))
                for key, task in unit.items
            ]
        return [(unit_key, result)]

    def _lookup(self, key: str) -> RunResult | None:
        hit = self._memo.get(key)
        if hit is None and self.store is not None:
            hit = self.store.get(key)
            if hit is not None:
                self._memo[key] = hit
        return hit
