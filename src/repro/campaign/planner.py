"""Campaign specs and planning: grids in, deduplicated task lists out.

A :class:`CampaignSpec` names a policy × workload × seed grid (optionally
crossed with the 32-point ⟨swapSize, quantaLength⟩ configuration space,
or with an arbitrary declarative ``param_grid`` validated against each
policy's registry schema) and :func:`plan` expands it into a
:class:`CampaignPlan` whose tasks are **unique by cache key** — the CFS
baseline a dozen figures share appears exactly once, which is both the
dedup guarantee and the DAG: every task is independent (metrics that
*relate* runs, like speedup-over-baseline, are computed by the consumer
after gather), so the plan is a single parallel wave.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.campaign.batching import batch_signature, batchable, plan_batches
from repro.campaign.cachekey import cache_key
from repro.campaign.spec import SimParams, TaskSpec
from repro.core.config import QUANTA_CHOICES_S, SWAP_SIZE_CHOICES
from repro.policies import REGISTRY
from repro.topologies import TOPOLOGY_REGISTRY
from repro.util.rng import DEFAULT_SEED
from repro.util.validation import require
from repro.workloads.suite import WORKLOAD_TABLE, workload

__all__ = [
    "CampaignSpec",
    "CampaignPlan",
    "plan",
    "dedupe",
    # batching (see repro.campaign.batching): grouping homogeneous tasks
    # into multi-run units is part of planning a campaign's execution
    "batchable",
    "batch_signature",
    "plan_batches",
]


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative experiment grid (the CLI's ``repro campaign`` unit).

    Defaults reproduce the Figure 6 grid: the five standard policies on
    all 16 workloads at one seed.  ``sweep=True`` additionally crosses
    every workload with non-adaptive Dike's 32 configurations (the raw
    data of Figures 2/4/5).
    """

    name: str = "fig6-grid"
    workloads: tuple[str, ...] = tuple(WORKLOAD_TABLE)
    policies: tuple[str, ...] = tuple(
        s.name for s in REGISTRY.tagged("standard")
    )
    seeds: tuple[int, ...] = (DEFAULT_SEED,)
    work_scale: float = 1.0
    sweep: bool = False
    #: declarative parameter grid: ``(("swap_size", (4, 8)),
    #: ("fairness_threshold", (0.05, 0.1)))`` crosses every policy whose
    #: registry schema covers *all* grid keys with the full cartesian
    #: product (each point validated via ``PolicySpec.from_params`` at
    #: planning time and folded into the cache key); policies whose
    #: schema misses a key get one unparameterised task instead.
    param_grid: tuple[tuple[str, tuple], ...] = ()
    #: check every run against its policy's invariant contract (the
    #: registry spec's ``invariants`` tuple); violation counts surface in
    #: campaign telemetry and ``RunResult.info["invariants"]``
    invariants: bool = False
    #: shared-LLC backend name (`repro.sim.llc`); ``None`` = NullLLC
    llc: str | None = None
    #: machine preset name (`repro.topologies.TOPOLOGY_REGISTRY`)
    topology: str = "heterogeneous"
    #: preset customisation, validated against the topology's schema
    topology_params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        require(len(self.workloads) >= 1, "a campaign needs >= 1 workload")
        require(len(self.seeds) >= 1, "a campaign needs >= 1 seed")
        for w in self.workloads:
            require(w in WORKLOAD_TABLE, f"unknown workload {w!r}")
        for p in self.policies:
            REGISTRY.get(p)  # raises UnknownPolicyError on a bad name
        for key, values in self.param_grid:
            require(
                len(tuple(values)) >= 1,
                f"param_grid entry {key!r} needs >= 1 value",
            )
        # Raises UnknownTopologyError / ValueError on a bad name or params.
        TOPOLOGY_REGISTRY.get(self.topology).validate_params(
            dict(self.topology_params)
        )


@dataclass(frozen=True)
class CampaignPlan:
    """Deduplicated tasks plus bookkeeping for the dry-run report."""

    spec: CampaignSpec
    tasks: tuple[TaskSpec, ...]
    keys: tuple[str, ...]
    n_requested: int
    #: keys already present in the cache at planning time (dry-run info)
    cached: frozenset[str] = field(default_factory=frozenset)

    @property
    def n_unique(self) -> int:
        return len(self.tasks)

    @property
    def n_to_run(self) -> int:
        return sum(1 for k in self.keys if k not in self.cached)

    def describe(self) -> str:
        lines = [
            f"campaign {self.spec.name!r}: "
            f"{len(self.spec.workloads)} workloads x "
            f"{len(self.spec.policies)} policies x "
            f"{len(self.spec.seeds)} seeds"
            + (" + config sweep" if self.spec.sweep else "")
            + (
                " + param grid over "
                + ",".join(k for k, _ in self.spec.param_grid)
                if self.spec.param_grid
                else ""
            ),
            f"  requested {self.n_requested} runs, {self.n_unique} unique "
            f"({self.n_requested - self.n_unique} deduplicated)",
            f"  cached {self.n_unique - self.n_to_run}, to run {self.n_to_run}",
        ]
        return "\n".join(lines)


def dedupe(tasks: list[TaskSpec]) -> tuple[tuple[TaskSpec, ...], tuple[str, ...]]:
    """Order-preserving dedup by cache key; returns (tasks, keys) aligned."""
    seen: dict[str, TaskSpec] = {}
    for t in tasks:
        seen.setdefault(cache_key(t), t)
    return tuple(seen.values()), tuple(seen.keys())


def _policy_grid_points(
    policy: str, param_grid: tuple[tuple[str, tuple], ...]
) -> tuple[dict | None, ...]:
    """The parameter points ``policy`` contributes to the campaign.

    The full cartesian product when the policy's schema covers every grid
    key (each point validated against the schema here, at planning time);
    a single unparameterised point otherwise — a grid over ``swap_size``
    must not drop the CFS baseline from the campaign, nor force Dike
    parameters onto it.
    """
    if not param_grid:
        return (None,)
    policy_spec = REGISTRY.get(policy)
    known = set(policy_spec.param_names())
    if any(key not in known for key, _ in param_grid):
        return (None,)
    keys = [key for key, _ in param_grid]
    points = []
    for combo in itertools.product(*(values for _, values in param_grid)):
        params = dict(zip(keys, combo))
        policy_spec.from_params(params)  # validate at planning time
        points.append(params)
    return tuple(points)


def plan(spec: CampaignSpec, cached_keys: frozenset[str] | None = None) -> CampaignPlan:
    """Expand a campaign spec into its deduplicated task list."""
    # Planned through the composable spec layer (repro.spec); tasks are
    # the specs' TaskSpec images, so cache keys are unchanged.
    from repro.spec import ExperimentSpec

    sim = SimParams(
        work_scale=spec.work_scale,
        llc=spec.llc,
        topology=spec.topology,
        topology_params=spec.topology_params,
    )
    inv = spec.invariants
    requested: list[TaskSpec] = []
    grids = {
        policy: _policy_grid_points(policy, spec.param_grid)
        for policy in spec.policies
    }
    for wl_name in spec.workloads:
        wl = workload(wl_name)
        for seed in spec.seeds:
            for policy in spec.policies:
                for params in grids[policy]:
                    requested.append(
                        ExperimentSpec.for_workload(
                            wl, policy, seed, params, sim=sim, invariants=inv
                        ).to_task()
                    )
            if spec.sweep:
                # The sweep's speedups need the CFS baseline — shared, by
                # dedup, with the policy grid above.
                requested.append(
                    ExperimentSpec.for_workload(
                        wl, "cfs", seed, sim=sim, invariants=inv
                    ).to_task()
                )
                for q in QUANTA_CHOICES_S:
                    for s in SWAP_SIZE_CHOICES:
                        requested.append(
                            ExperimentSpec.for_workload(
                                wl, "dike", seed,
                                {"quanta_length_s": q, "swap_size": s},
                                sim=sim,
                                invariants=inv,
                            ).to_task()
                        )
    tasks, keys = dedupe(requested)
    return CampaignPlan(
        spec=spec,
        tasks=tasks,
        keys=keys,
        n_requested=len(requested),
        cached=frozenset(k for k in keys if k in (cached_keys or frozenset())),
    )
