"""Structured campaign telemetry: counters, progress lines, event log.

One :class:`Telemetry` instance observes a whole campaign.  Every state
change is (a) counted, (b) optionally appended as a JSON line to a
machine-readable events file, and (c) summarised as a single-line human
progress report on ``stream`` (stderr by default) — throttled so a
10 000-task campaign does not emit 10 000 lines unless every task matters
(``verbose=True`` prints one line per event).

Throughput is reported in **simulated quanta per wall second**, the unit
the executor actually spends its time on; the cache-hit counter is the
load-bearing number for resumability ("second run: 0 executed, N hits").
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import IO, Any

__all__ = ["Telemetry"]


class Telemetry:
    """Counts, logs and narrates campaign progress.

    Parameters
    ----------
    events_path:
        Where to append JSONL events (parents created); None disables.
    stream:
        Text stream for human progress lines; None silences them.
    verbose:
        Emit a progress line on *every* event rather than ~1/second.
    label:
        Prefix of progress lines (``[campaign] ...``).
    """

    def __init__(
        self,
        events_path: str | Path | None = None,
        stream: IO[str] | None = sys.stderr,
        verbose: bool = False,
        label: str = "campaign",
    ) -> None:
        self.stream = stream
        self.verbose = verbose
        self.label = label
        self.queued = 0
        self.running = 0
        self.done = 0
        self.failed = 0
        self.cache_hits = 0
        self.retries = 0
        self.sim_quanta = 0
        #: tasks that carried an invariant digest (executed or replayed)
        self.invariant_tasks = 0
        #: total invariant violations across those tasks
        self.invariant_violations = 0
        self._t0 = time.monotonic()
        self._last_line = 0.0
        self._events: IO[str] | None = None
        if events_path is not None:
            path = Path(events_path).expanduser()
            path.parent.mkdir(parents=True, exist_ok=True)
            self._events = path.open("a")

    # ------------------------------------------------------------- events

    def emit(self, event: str, **fields: Any) -> None:
        """Record one event (counters are the caller's responsibility)."""
        if self._events is not None:
            record = {"t": round(self.elapsed_s, 4), "event": event, **fields}
            self._events.write(json.dumps(record, sort_keys=True) + "\n")
            self._events.flush()

    def tasks_planned(self, n_requested: int, n_unique: int) -> None:
        self.queued += n_unique
        self.emit("planned", requested=n_requested, unique=n_unique)
        self._narrate(
            f"planned {n_unique} unique tasks "
            f"({n_requested - n_unique} duplicates shared)", force=True,
        )

    def cache_hit(
        self, key: str, label: str, invariants: dict[str, Any] | None = None
    ) -> None:
        """Record a cache hit.

        ``invariants`` replays the violation digest recorded when the
        cached result was originally executed (see
        :meth:`task_done`) — a resumed invariant-checked campaign keeps
        its counts instead of reporting zero for skipped tasks.
        """
        self.cache_hits += 1
        self.queued -= 1
        if invariants is not None:
            self._count_invariants(invariants)
            self.emit("cache_hit", key=key, task=label, invariants=invariants)
        else:
            self.emit("cache_hit", key=key, task=label)
        self._narrate(f"cache hit {label}")

    def task_started(self, key: str, label: str, attempt: int) -> None:
        self.queued -= 1
        self.running += 1
        self.emit("task_started", key=key, task=label, attempt=attempt)

    def task_retried(self, key: str, label: str, attempt: int, error: str) -> None:
        self.running -= 1
        self.queued += 1
        self.retries += 1
        self.emit("task_retried", key=key, task=label, attempt=attempt, error=error)
        self._narrate(f"retry #{attempt} {label}: {error}", force=True)

    def task_done(
        self,
        key: str,
        label: str,
        n_quanta: int,
        metrics: dict[str, Any] | None = None,
        invariants: dict[str, Any] | None = None,
    ) -> None:
        """Record a completed task.

        ``metrics`` is an optional `repro.obs.MetricsRegistry` snapshot
        taken from the run (``RunResult.info["metrics"]``, present when
        the run carried an event bus with metrics); ``invariants`` is the
        per-task violation digest (``RunResult.info["invariants"]``,
        present on invariant-checked tasks).  Both ride along on the
        JSONL event so stage timings and contract status survive into
        campaign logs.
        """
        self.running -= 1
        self.done += 1
        self.sim_quanta += n_quanta
        extra: dict[str, Any] = {}
        if metrics:
            extra["metrics"] = metrics
        if invariants is not None:
            self._count_invariants(invariants)
            extra["invariants"] = invariants
        self.emit("task_done", key=key, task=label, n_quanta=n_quanta, **extra)
        violated = invariants is not None and invariants.get("total", 0)
        if violated:
            self._narrate(
                f"done {label} — {invariants['total']} invariant "
                "violation(s)!", force=True,
            )
        else:
            self._narrate(f"done {label}")

    def _count_invariants(self, invariants: dict[str, Any]) -> None:
        self.invariant_tasks += 1
        total = invariants.get("total", 0)
        if isinstance(total, int):
            self.invariant_violations += total

    def task_failed(self, key: str, label: str, kind: str, error: str) -> None:
        self.running -= 1
        self.failed += 1
        self.emit("task_failed", key=key, task=label, kind=kind, error=error)
        self._narrate(f"FAILED ({kind}) {label}: {error}", force=True)

    def degraded(self, reason: str) -> None:
        self.emit("degraded_to_serial", reason=reason)
        self._narrate(f"degraded to serial execution: {reason}", force=True)

    # ------------------------------------------------------------ summary

    @property
    def elapsed_s(self) -> float:
        return time.monotonic() - self._t0

    @property
    def quanta_per_s(self) -> float:
        dt = self.elapsed_s
        return self.sim_quanta / dt if dt > 0 else 0.0

    def summary(self) -> dict[str, float | int]:
        out: dict[str, float | int] = {
            "done": self.done,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "retries": self.retries,
            "sim_quanta": self.sim_quanta,
            "elapsed_s": round(self.elapsed_s, 3),
            "quanta_per_s": round(self.quanta_per_s, 1),
        }
        if self.invariant_tasks:
            out["invariant_tasks"] = self.invariant_tasks
            out["invariant_violations"] = self.invariant_violations
        return out

    def close(self) -> None:
        self.emit("summary", **self.summary())
        self._narrate(self.render_summary(), force=True)
        if self._events is not None:
            self._events.close()
            self._events = None

    def render_summary(self) -> str:
        s = self.summary()
        line = (
            f"{s['done']} executed, {s['failed']} failed, "
            f"{s['cache_hits']} cache hits, {s['retries']} retries "
            f"in {s['elapsed_s']:.1f}s ({s['quanta_per_s']:.0f} quanta/s)"
        )
        if self.invariant_tasks:
            line += (
                f"; invariants: {self.invariant_violations} violation(s) "
                f"across {self.invariant_tasks} checked task(s)"
            )
        return line

    # ------------------------------------------------------------ private

    def _narrate(self, message: str, force: bool = False) -> None:
        if self.stream is None:
            return
        now = time.monotonic()
        if not force and not self.verbose and now - self._last_line < 1.0:
            return
        self._last_line = now
        state = (
            f"{self.done} done / {self.running} running / "
            f"{self.queued} queued / {self.failed} failed / "
            f"{self.cache_hits} hits"
        )
        print(f"[{self.label}] {message} | {state}", file=self.stream)
