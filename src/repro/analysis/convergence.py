"""Convergence analysis: when and how a scheduler reaches a fair state.

The paper observes that swapping concentrates in the early, memory-
intensive stages of a run ("it is necessary to maintain fairness ... in
early stages by swapping more frequently.  After time ... the swap rate
could decrease").  These helpers quantify that from a run's trace:

* :func:`swap_phases` — how front-loaded the migration activity is;
* :func:`time_to_stable_placement` — when the thread-to-core mapping
  stops changing;
* :func:`rate_dispersion_series` — the per-quantum access-rate dispersion
  a fairness gate watches, as a time series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.results import RunResult
from repro.util.stats import coefficient_of_variation
from repro.util.validation import require

__all__ = [
    "SwapPhaseStats",
    "swap_phases",
    "time_to_stable_placement",
    "rate_dispersion_series",
]


@dataclass(frozen=True)
class SwapPhaseStats:
    """Distribution of a run's swaps over its lifetime."""

    total_swaps: int
    first_half_fraction: float
    first_quarter_fraction: float
    median_swap_time_s: float
    makespan_s: float

    @property
    def front_loaded(self) -> bool:
        """More than half of all swaps in the first half of the run."""
        return self.first_half_fraction > 0.5


def swap_phases(result: RunResult) -> SwapPhaseStats:
    """Summarise when a run's swaps happened (requires swap events)."""
    require(result.trace is not None, "run has no trace attached")
    events = result.trace.swap_events
    makespan = result.makespan_s
    if not events or not np.isfinite(makespan) or makespan <= 0:
        return SwapPhaseStats(
            total_swaps=len(events),
            first_half_fraction=float("nan"),
            first_quarter_fraction=float("nan"),
            median_swap_time_s=float("nan"),
            makespan_s=makespan,
        )
    times = np.array([e.time_s for e in events])
    return SwapPhaseStats(
        total_swaps=len(events),
        first_half_fraction=float((times <= makespan / 2).mean()),
        first_quarter_fraction=float((times <= makespan / 4).mean()),
        median_swap_time_s=float(np.median(times)),
        makespan_s=makespan,
    )


def time_to_stable_placement(
    result: RunResult, stable_quanta: int = 10
) -> float:
    """Time after which the placement stayed unchanged for ``stable_quanta``
    consecutive quanta (ignoring threads leaving), or NaN if never.

    Requires a run recorded with ``record_timeseries=True``.
    """
    require(result.trace is not None, "run has no trace attached")
    trace = result.trace
    require(
        trace.record_timeseries and trace.assignments,
        "run was not recorded with timeseries enabled",
    )
    assignments = trace.assignments
    times = trace.times
    stable_since: int | None = None
    prev: dict[int, int] | None = None
    for i, current in enumerate(assignments):
        if prev is not None:
            moved = any(
                prev.get(tid) is not None and prev[tid] != vcore
                for tid, vcore in current.items()
            )
            if moved:
                stable_since = None
            elif stable_since is None:
                stable_since = i
            if stable_since is not None and i - stable_since + 1 >= stable_quanta:
                return float(times[stable_since])
        prev = current
    return float("nan")


def rate_dispersion_series(result: RunResult) -> tuple[np.ndarray, np.ndarray]:
    """(times, cv of access rates) per recorded quantum.

    The raw global dispersion of per-thread access rates over time — the
    quantity a fairness gate reacts to, useful for plotting convergence.
    """
    require(result.trace is not None, "run has no trace attached")
    trace = result.trace
    times = np.asarray(trace.times, dtype=np.float64)
    cvs = np.array(
        [
            coefficient_of_variation([r for r in rates.values() if r > 0.0])
            for rates in trace.access_rates
        ],
        dtype=np.float64,
    )
    return times, cvs
