"""Placement-timeline visualisation: where did each thread run, over time?

Renders a run's recorded assignments as an ASCII timeline — one row per
thread, one column per time bucket, each cell the core *tier* the thread
occupied (``F`` fast tier, ``s`` slow tier, further tiers ``t``, ``u``, …;
``.`` = not yet arrived / finished) — plus
a swap-activity sparkline.  Makes scheduler behaviour directly visible:
CFS rows are constant, DIO rows shimmer every quantum, Dike rows change a
few times early then settle.
"""

from __future__ import annotations

import numpy as np

from repro.sim.results import RunResult
from repro.sim.topology import Topology
from repro.util.validation import require

__all__ = ["placement_timeline", "swap_activity_sparkline"]

#: Tier glyphs, fastest socket first.
_TIER_GLYPHS = "Fstuvwxyz"
_SPARK = " .:-=+*#%@"


def _tier_of(topology: Topology) -> dict[int, int]:
    """vcore -> tier index (0 = fastest socket)."""
    freqs = sorted(
        {s.freq_ghz for s in topology.sockets}, reverse=True
    )
    tier_of_socket = {}
    for sid, sock in enumerate(topology.sockets):
        tier_of_socket[sid] = freqs.index(sock.freq_ghz)
    return {
        v.vcore_id: tier_of_socket[v.socket_id] for v in topology.vcores
    }


def placement_timeline(
    result: RunResult,
    topology: Topology,
    width: int = 72,
    max_threads: int = 48,
) -> str:
    """Render the run's thread-to-tier placement over time.

    Requires a run recorded with ``record_timeseries=True``.
    """
    require(result.trace is not None, "run has no trace attached")
    trace = result.trace
    require(
        trace.record_timeseries and trace.assignments,
        "run was not recorded with timeseries enabled",
    )
    tiers = _tier_of(topology)
    times = np.asarray(trace.times)
    edges = np.linspace(times.min(), times.max() + 1e-9, width + 1)
    col_of = np.clip(np.searchsorted(edges, times, side="right") - 1, 0, width - 1)

    tids = sorted({tid for snap in trace.assignments for tid in snap})[:max_threads]
    lines = [
        f"Placement timeline ({result.policy_name} on {result.workload_name}; "
        f"F=fast tier, s=slow tier, .=absent)"
    ]
    for tid in tids:
        row = ["."] * width
        for i, snap in enumerate(trace.assignments):
            vcore = snap.get(tid)
            if vcore is None:
                continue
            tier = tiers.get(vcore, len(_TIER_GLYPHS) - 1)
            row[col_of[i]] = _TIER_GLYPHS[min(tier, len(_TIER_GLYPHS) - 1)]
        # forward-fill columns with no snapshot so rows read continuously
        # (a gap after the thread's last appearance stays blank)
        last = "."
        last_seen = -1
        for i, snap in enumerate(trace.assignments):
            if tid in snap:
                last_seen = col_of[i]
        for c in range(min(last_seen + 1, width)):
            if row[c] == ".":
                row[c] = last
            else:
                last = row[c]
        lines.append(f"t{tid:03d} {''.join(row)}")
    lines.append(f"time: [{times.min():.1f}s, {times.max():.1f}s]")
    return "\n".join(lines)


def swap_activity_sparkline(
    result: RunResult, width: int = 72
) -> str:
    """Swap volume over time as a one-line intensity ramp."""
    require(result.trace is not None, "run has no trace attached")
    events = result.trace.swap_events
    if not events or not np.isfinite(result.makespan_s):
        return "(no swaps)"
    times = np.array([e.time_s for e in events])
    edges = np.linspace(0.0, result.makespan_s + 1e-9, width + 1)
    counts, _ = np.histogram(times, bins=edges)
    peak = counts.max()
    if peak == 0:
        return "(no swaps)"
    chars = [
        _SPARK[min(int(c / peak * (len(_SPARK) - 1)), len(_SPARK) - 1)]
        for c in counts
    ]
    return (
        f"swap activity ({len(events)} swaps, peak {peak}/bucket):\n"
        + "".join(chars)
    )
