"""Analysis utilities: multi-seed replication, convergence, report building."""

from repro.analysis.convergence import (
    SwapPhaseStats,
    rate_dispersion_series,
    swap_phases,
    time_to_stable_placement,
)
from repro.analysis.replication import (
    MetricSummary,
    ReplicatedCell,
    compare_policies,
    replicate,
    significance_table,
)
from repro.analysis.report import EvaluationReport, ShapeCheck, build_report
from repro.analysis.timeline import placement_timeline, swap_activity_sparkline

__all__ = [
    "SwapPhaseStats",
    "rate_dispersion_series",
    "swap_phases",
    "time_to_stable_placement",
    "MetricSummary",
    "ReplicatedCell",
    "compare_policies",
    "replicate",
    "significance_table",
    "EvaluationReport",
    "ShapeCheck",
    "build_report",
    "placement_timeline",
    "swap_activity_sparkline",
]
