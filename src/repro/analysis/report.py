"""Full-evaluation report builder.

Combines a Figure 6 run (or a multi-seed replication) into a single
plain-text report: per-workload metrics, per-class aggregates, headline
geomeans and the shape checklist — the artefact a reviewer would skim to
judge the reproduction at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.fig6 import POLICY_ORDER, Fig6Result
from repro.util.stats import geometric_mean
from repro.util.tables import format_table

__all__ = ["ShapeCheck", "EvaluationReport", "build_report"]


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim and whether the data supports it."""

    claim: str
    holds: bool
    detail: str


@dataclass(frozen=True)
class EvaluationReport:
    fig6: Fig6Result
    checks: tuple[ShapeCheck, ...]

    @property
    def all_hold(self) -> bool:
        return all(c.holds for c in self.checks)

    def render(self) -> str:
        parts = [self.fig6.render(), "", self._class_table(), "", self._checklist()]
        return "\n".join(parts)

    def _class_table(self) -> str:
        by_class: dict[str, list] = {}
        for row in self.fig6.rows:
            by_class.setdefault(row.workload_class, []).append(row)
        rows = []
        for cls, cls_rows in by_class.items():
            cells: list[object] = [cls, len(cls_rows)]
            for p in POLICY_ORDER:
                cells.append(
                    geometric_mean(
                        [r.fairness[p] / r.baseline_fairness for r in cls_rows]
                    )
                )
                cells.append(geometric_mean([r.speedup[p] for r in cls_rows]))
            rows.append(cells)
        headers = ["class", "n"] + [
            f"{p} {m}" for p in POLICY_ORDER for m in ("F-ratio", "S")
        ]
        return format_table(
            headers, rows, title="Per-class aggregates (geomean)"
        )

    def _checklist(self) -> str:
        lines = ["Shape checklist:"]
        for c in self.checks:
            mark = "PASS" if c.holds else "FAIL"
            lines.append(f"  [{mark}] {c.claim} — {c.detail}")
        return "\n".join(lines)


def build_report(fig6: Fig6Result) -> EvaluationReport:
    """Evaluate the paper's headline claims against a Figure 6 run."""
    f = {p: fig6.geomean_fairness_ratio(p) for p in POLICY_ORDER}
    s = {p: fig6.geomean_speedup(p) for p in POLICY_ORDER}
    swaps = {
        p: float(np.mean([r.swaps[p] for r in fig6.rows])) for p in POLICY_ORDER
    }

    checks = (
        ShapeCheck(
            "contention-aware policies improve fairness over CFS",
            all(v > 1.05 for v in f.values()),
            ", ".join(f"{p}:{(v - 1) * 100:+.1f}%" for p, v in f.items()),
        ),
        ShapeCheck(
            "Dike-AF achieves the best fairness",
            f["dike-af"] >= max(f.values()) - 0.005,
            f"dike-af ratio {f['dike-af']:.3f} vs best {max(f.values()):.3f}",
        ),
        ShapeCheck(
            "Dike-AP does not hurt fairness materially",
            f["dike-ap"] > 0.95 * f["dike"],
            f"dike-ap {f['dike-ap']:.3f} vs dike {f['dike']:.3f}",
        ),
        ShapeCheck(
            "Dike outperforms DIO",
            s["dike"] > s["dio"],
            f"dike {s['dike']:.3f} vs dio {s['dio']:.3f}",
        ),
        ShapeCheck(
            "Dike-AP delivers the best performance",
            s["dike-ap"] >= max(s.values()) - 0.02,
            f"dike-ap {s['dike-ap']:.3f} vs best {max(s.values()):.3f}",
        ),
        ShapeCheck(
            "Dike needs a fraction of DIO's migrations",
            swaps["dike"] < 0.5 * swaps["dio"],
            f"dike {swaps['dike']:.0f} vs dio {swaps['dio']:.0f}",
        ),
        ShapeCheck(
            "Dike-AP migrates least among Dike modes",
            swaps["dike-ap"] <= min(swaps["dike"], swaps["dike-af"]),
            f"dike-ap {swaps['dike-ap']:.0f}",
        ),
    )
    return EvaluationReport(fig6=fig6, checks=checks)
