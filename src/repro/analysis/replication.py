"""Multi-seed replication: are the reported effects seed-robust?

The paper reports single numbers per workload; a reproduction should show
the spread.  :func:`replicate` runs one ``(workload, policy)`` cell across
seeds and summarises each metric with mean, standard deviation and a
normal-approximation confidence interval; :func:`compare_policies` does it
for a set of policies with a shared per-seed CFS baseline (so speedups are
paired, not pooled).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.experiments.runner import PolicyFactory, run_workload
from repro.metrics.fairness import fairness
from repro.metrics.performance import speedup
from repro.schedulers.cfs import CFSScheduler
from repro.sim.results import RunResult
from repro.util.validation import require
from repro.workloads.suite import WorkloadSpec

__all__ = [
    "MetricSummary",
    "ReplicatedCell",
    "replicate",
    "compare_policies",
    "significance_table",
]

#: z-value for a 95 % normal-approximation interval.
_Z95 = 1.96


@dataclass(frozen=True)
class MetricSummary:
    """Mean / spread / 95 % CI of one metric across seeds."""

    mean: float
    std: float
    ci_low: float
    ci_high: float
    n: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "MetricSummary":
        arr = np.asarray([v for v in values if np.isfinite(v)], dtype=np.float64)
        if arr.size == 0:
            nan = float("nan")
            return cls(nan, nan, nan, nan, 0)
        mean = float(arr.mean())
        std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
        half = _Z95 * std / np.sqrt(arr.size) if arr.size > 1 else 0.0
        return cls(mean, std, mean - half, mean + half, int(arr.size))

    def overlaps(self, other: "MetricSummary") -> bool:
        """Whether the two 95 % intervals overlap (a coarse significance
        check for 'policy A beats policy B')."""
        return self.ci_low <= other.ci_high and other.ci_low <= self.ci_high


@dataclass(frozen=True)
class ReplicatedCell:
    """One (workload, policy) cell across seeds."""

    workload: str
    policy: str
    fairness: MetricSummary
    speedup: MetricSummary
    swaps: MetricSummary
    results: tuple[RunResult, ...]


def replicate(
    spec: WorkloadSpec,
    policy_factory: PolicyFactory,
    seeds: Sequence[int],
    work_scale: float = 1.0,
    baseline_factory: PolicyFactory = CFSScheduler,
    **run_kwargs: object,
) -> ReplicatedCell:
    """Run one policy across ``seeds`` with a paired per-seed baseline."""
    require(len(seeds) >= 1, "at least one seed is required")
    fair, speed, swaps, results = [], [], [], []
    for seed in seeds:
        base = run_workload(
            spec, baseline_factory(), seed=seed, work_scale=work_scale, **run_kwargs
        )
        res = run_workload(
            spec, policy_factory(), seed=seed, work_scale=work_scale, **run_kwargs
        )
        fair.append(fairness(res))
        speed.append(speedup(res, base))
        swaps.append(float(res.swap_count))
        results.append(res)
    name = results[0].policy_name
    return ReplicatedCell(
        workload=spec.name,
        policy=name,
        fairness=MetricSummary.from_values(fair),
        speedup=MetricSummary.from_values(speed),
        swaps=MetricSummary.from_values(swaps),
        results=tuple(results),
    )


def compare_policies(
    spec: WorkloadSpec,
    policies: Mapping[str, PolicyFactory],
    seeds: Sequence[int],
    work_scale: float = 1.0,
    **run_kwargs: object,
) -> dict[str, ReplicatedCell]:
    """Replicate several policies on one workload (shared seeds/baselines)."""
    return {
        name: replicate(
            spec, factory, seeds, work_scale=work_scale, **run_kwargs
        )
        for name, factory in policies.items()
    }


def significance_table(
    cells: Mapping[str, ReplicatedCell], metric: str = "fairness"
) -> str:
    """Pairwise CI-overlap matrix for one metric across policies.

    ``>`` / ``<`` mark pairs whose 95 % intervals do *not* overlap (a
    coarse "significantly better/worse"); ``~`` marks overlapping pairs.
    A quick honesty check before claiming one policy beats another.
    """
    from repro.util.tables import format_table

    names = list(cells)

    def summary(name: str) -> MetricSummary:
        return getattr(cells[name], metric)

    rows = []
    for a in names:
        row: list[object] = [f"{a} ({summary(a).mean:.3f})"]
        for b in names:
            if a == b:
                row.append("-")
            elif summary(a).overlaps(summary(b)):
                row.append("~")
            elif summary(a).mean > summary(b).mean:
                row.append(">")
            else:
                row.append("<")
        rows.append(row)
    return format_table(
        [f"{metric} (mean)"] + names,
        rows,
        title=f"Pairwise 95% CI comparison on {metric}",
    )
