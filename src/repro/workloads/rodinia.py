"""Phase-trace models of the Rodinia applications used in the paper.

The paper's workloads (Table II) draw from ten applications.  The real
binaries cannot run here, so each app is modelled as a phase trace whose
*counter-visible* behaviour matches its published characterisation (Che et
al., IISWC'09; Zhuravlev et al., ASPLOS'10) and the roles the paper assigns:

* **Memory-intensive (bold in Table II)** — ``jacobi``, ``streamcluster``,
  ``needle``, ``stream_omp``: high LLC miss ratio (≫ 10 %), steady
  streaming access after a warm-up prologue.  ``stream_omp`` (the STREAM
  kernel) is the most bandwidth-hungry — the paper shows it suffering a
  4.6x heterogeneous-concurrent slowdown (wl15).
* **Compute-intensive** — ``lavaMD``, ``leukocyte``, ``srad``, ``hotspot``,
  ``heartwall``: miss ratio below the 10 % classification threshold, with
  short memory bursts ("short periods of intensive memory access and then
  long periods with few memory accesses") that make UC workloads the
  hardest to predict (Figure 7).
* **kmeans** — added to every workload; moderate memory intensity plus
  frequent global barriers ("excessive inter-thread communication").

Calibration targets (fast core, idle memory system): per-thread demand of
roughly 1–2 GB/s for memory apps (so 3 memory apps x 8 threads oversubscribe
the 38 GB/s controller) and < 0.2 GB/s for compute apps; standalone runtimes
of 35–50 s at ``work_scale=1``.
"""

from __future__ import annotations

import numpy as np

from repro.sim.phases import PhaseTrace, bursty_trace, steady_trace, warmup_trace
from repro.workloads.benchmark import BenchmarkSpec

__all__ = [
    "APP_REGISTRY",
    "app",
    "memory_apps",
    "compute_apps",
    "jacobi",
    "streamcluster",
    "stream_omp",
    "needle",
    "lavamd",
    "leukocyte",
    "srad",
    "hotspot",
    "heartwall",
    "kmeans",
]


# --------------------------------------------------------------------------
# Memory-intensive applications
# --------------------------------------------------------------------------

def jacobi() -> BenchmarkSpec:
    """Iterative stencil solver: steady streaming reads/writes.

    Figure 1 shows jacobi losing 2.3x under concurrency in wl2 — the
    canonical bandwidth victim.
    """

    def build(rng: np.random.Generator, scale: float) -> PhaseTrace:
        return warmup_trace(
            total_work=4.0e10 * scale,
            cpi=0.9,
            api=0.068,
            miss_ratio=0.45,
            warmup_fraction=0.05,
            warmup_miss_ratio=0.60,
        )

    return BenchmarkSpec("jacobi", "M", build)


def streamcluster() -> BenchmarkSpec:
    """Online clustering: pointer-heavy streaming with steady misses."""

    def build(rng: np.random.Generator, scale: float) -> PhaseTrace:
        return warmup_trace(
            total_work=4.5e10 * scale,
            cpi=1.1,
            api=0.056,
            miss_ratio=0.35,
            warmup_fraction=0.06,
            warmup_miss_ratio=0.55,
        )

    return BenchmarkSpec("streamcluster", "M", build)


def stream_omp() -> BenchmarkSpec:
    """The STREAM bandwidth kernel: the heaviest memory load in the suite
    (4.6x heterogeneous-concurrent slowdown in the paper's wl15)."""

    def build(rng: np.random.Generator, scale: float) -> PhaseTrace:
        return steady_trace(
            total_work=2.4e10 * scale,
            cpi=0.7,
            api=0.110,
            miss_ratio=0.60,
        )

    return BenchmarkSpec("stream_omp", "M", build)


def needle() -> BenchmarkSpec:
    """Needleman-Wunsch dynamic programming: diagonal-wavefront streaming."""

    def build(rng: np.random.Generator, scale: float) -> PhaseTrace:
        return warmup_trace(
            total_work=4.2e10 * scale,
            cpi=1.0,
            api=0.050,
            miss_ratio=0.30,
            warmup_fraction=0.05,
            warmup_miss_ratio=0.50,
        )

    return BenchmarkSpec("needle", "M", build)


# --------------------------------------------------------------------------
# Compute-intensive applications (bursty memory behaviour)
# --------------------------------------------------------------------------

def lavamd() -> BenchmarkSpec:
    """N-body molecular dynamics in boxes: cache-resident compute."""

    def build(rng: np.random.Generator, scale: float) -> PhaseTrace:
        return bursty_trace(
            total_work=9.0e10 * scale,
            cpi=0.70,
            api=0.030,
            quiet_miss_ratio=0.03,
            burst_miss_ratio=0.28,
            burst_fraction=0.06,
            n_cycles=10,
            rng=rng,
        )

    return BenchmarkSpec("lavaMD", "C", build)


def leukocyte() -> BenchmarkSpec:
    """Video cell tracking: long compute regions, frame-load bursts."""

    def build(rng: np.random.Generator, scale: float) -> PhaseTrace:
        return bursty_trace(
            total_work=1.0e11 * scale,
            cpi=0.80,
            api=0.025,
            quiet_miss_ratio=0.04,
            burst_miss_ratio=0.30,
            burst_fraction=0.05,
            n_cycles=14,
            rng=rng,
        )

    return BenchmarkSpec("leukocyte", "C", build)


def srad() -> BenchmarkSpec:
    """Speckle-reducing anisotropic diffusion: compute with strong bursts
    (the paper's example of a mildly-degraded compute app, 1.25x in wl2)."""

    def build(rng: np.random.Generator, scale: float) -> PhaseTrace:
        return bursty_trace(
            total_work=8.5e10 * scale,
            cpi=0.75,
            api=0.040,
            quiet_miss_ratio=0.05,
            burst_miss_ratio=0.32,
            burst_fraction=0.07,
            n_cycles=16,
            rng=rng,
        )

    return BenchmarkSpec("srad", "C", build)


def hotspot() -> BenchmarkSpec:
    """Thermal simulation kernel: tiled stencil, mostly cache resident."""

    def build(rng: np.random.Generator, scale: float) -> PhaseTrace:
        return bursty_trace(
            total_work=9.5e10 * scale,
            cpi=0.80,
            api=0.035,
            quiet_miss_ratio=0.06,
            burst_miss_ratio=0.28,
            burst_fraction=0.07,
            n_cycles=12,
            rng=rng,
        )

    return BenchmarkSpec("hotspot", "C", build)


def heartwall() -> BenchmarkSpec:
    """Ultrasound image tracking: compute heavy with periodic frame loads."""

    def build(rng: np.random.Generator, scale: float) -> PhaseTrace:
        return bursty_trace(
            total_work=9.0e10 * scale,
            cpi=0.85,
            api=0.030,
            quiet_miss_ratio=0.04,
            burst_miss_ratio=0.30,
            burst_fraction=0.06,
            n_cycles=12,
            rng=rng,
        )

    return BenchmarkSpec("heartwall", "C", build)


# --------------------------------------------------------------------------
# kmeans: the contention generator added to every workload
# --------------------------------------------------------------------------

def kmeans(n_barriers: int = 19) -> BenchmarkSpec:
    """KMEANS clustering: moderate memory traffic plus a global barrier per
    iteration ("excessive inter-thread communication")."""

    def build(rng: np.random.Generator, scale: float) -> PhaseTrace:
        return warmup_trace(
            total_work=5.5e10 * scale,
            cpi=0.9,
            api=0.050,
            miss_ratio=0.15,
            warmup_fraction=0.04,
            warmup_miss_ratio=0.40,
        )

    fractions = tuple((k + 1) / (n_barriers + 1) for k in range(n_barriers))
    return BenchmarkSpec("kmeans", "M", build, barrier_fractions=fractions)


#: name -> zero-argument spec factory for every modelled application.
APP_REGISTRY = {
    "jacobi": jacobi,
    "streamcluster": streamcluster,
    "stream_omp": stream_omp,
    "needle": needle,
    "lavaMD": lavamd,
    "leukocyte": leukocyte,
    "srad": srad,
    "hotspot": hotspot,
    "heartwall": heartwall,
    "kmeans": kmeans,
}


def app(name: str) -> BenchmarkSpec:
    """Look up an application model by its Table II name."""
    try:
        return APP_REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {sorted(APP_REGISTRY)}"
        ) from None


def memory_apps() -> tuple[str, ...]:
    """Names of the nominally memory-intensive applications."""
    return tuple(
        name for name, factory in APP_REGISTRY.items() if factory().intensity == "M"
    )


def compute_apps() -> tuple[str, ...]:
    """Names of the nominally compute-intensive applications."""
    return tuple(
        name for name, factory in APP_REGISTRY.items() if factory().intensity == "C"
    )
