"""Benchmark specifications and instantiation into simulator process groups.

A :class:`BenchmarkSpec` is the static description of one application: its
name, nominal intensity class (memory- vs compute-intensive, Table II's
bold/plain distinction), thread count, barrier structure and a *trace
builder* that produces the phase trace for one thread.  ``instantiate``
turns a spec into a live :class:`~repro.sim.process.ProcessGroup` with
per-thread jittered traces (homogeneous threads are near- but not
bit-identical, as on real hardware).

``work_scale`` uniformly scales every thread's instruction count; the
experiment harness uses it to run shape-preserving, faster versions of the
paper's workloads inside the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.sim.phases import PhaseTrace, perturbed
from repro.sim.process import ProcessGroup
from repro.sim.thread import SimThread
from repro.util.rng import make_rng
from repro.util.validation import check_positive, require

__all__ = ["Intensity", "BenchmarkSpec", "instantiate"]

#: Nominal intensity labels used by Table II.
Intensity = str  # "M" | "C"

TraceBuilder = Callable[[np.random.Generator, float], PhaseTrace]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Static description of one benchmark application.

    Parameters
    ----------
    name:
        Application name (``"jacobi"`` ...).
    intensity:
        Nominal class from Table II: ``"M"`` (memory) or ``"C"`` (compute).
        Schedulers never see this — they classify online from counters;
        it drives workload-suite bookkeeping and ground-truth tests.
    build_trace:
        ``(rng, work_scale) -> PhaseTrace`` for a representative thread.
    n_threads:
        Threads per instance (8 in every paper workload).
    barrier_fractions:
        Work fractions at which all threads of an instance synchronise
        (KMEANS-style inter-thread communication); empty for data-parallel
        apps without global barriers.
    thread_jitter:
        Relative spread applied per thread to the trace (work and rates).
    """

    name: str
    intensity: Intensity
    build_trace: TraceBuilder
    n_threads: int = 8
    barrier_fractions: tuple[float, ...] = ()
    thread_jitter: float = 0.02

    def __post_init__(self) -> None:
        require(self.intensity in ("M", "C"), "intensity must be 'M' or 'C'")
        require(self.n_threads >= 1, "n_threads must be >= 1")
        require(
            all(0.0 < f < 1.0 for f in self.barrier_fractions),
            "barrier fractions must be in (0, 1)",
        )

    @property
    def is_memory_intensive(self) -> bool:
        return self.intensity == "M"


def instantiate(
    spec: BenchmarkSpec,
    group_id: int,
    tid_start: int,
    seed: int,
    work_scale: float = 1.0,
) -> ProcessGroup:
    """Build a live process group for ``spec``.

    Thread ids are assigned densely from ``tid_start``; the caller is
    responsible for global tid density across groups.
    """
    check_positive(work_scale, "work_scale")
    base_rng = make_rng(seed, "benchmark", spec.name, str(group_id))
    base_trace = spec.build_trace(base_rng, work_scale)
    threads = []
    for member in range(spec.n_threads):
        thread_rng = make_rng(
            seed, "benchmark", spec.name, str(group_id), f"thread-{member}"
        )
        trace = perturbed(
            base_trace,
            thread_rng,
            work_jitter=spec.thread_jitter,
            rate_jitter=spec.thread_jitter,
        )
        threads.append(
            SimThread(
                tid=tid_start + member,
                benchmark=spec.name,
                group=group_id,
                member=member,
                trace=trace,
                barrier_fractions=spec.barrier_fractions,
            )
        )
    return ProcessGroup(group_id=group_id, benchmark=spec.name, threads=threads)
