"""Random workload generation beyond the fixed Table II suite.

Used by property-based tests (schedulers must behave sanely on *any* mix)
and by the extension experiments exploring workload-class boundaries the
paper does not cover (e.g. 4M/0C, 0M/4C).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import make_rng
from repro.util.validation import require
from repro.workloads.rodinia import compute_apps, memory_apps
from repro.workloads.suite import WorkloadSpec

__all__ = ["random_workload", "workload_with_mix"]


def workload_with_mix(
    n_memory: int,
    n_compute: int,
    seed: int = 0,
    name: str | None = None,
    include_kmeans: bool = True,
    threads_per_app: int = 8,
) -> WorkloadSpec:
    """A workload with exactly ``n_memory`` M apps and ``n_compute`` C apps.

    Applications are drawn without replacement where possible; if the mix
    asks for more apps of a class than exist, names repeat (multiple
    instances of one application are legal — the simulator instantiates
    independent process groups).
    """
    require(n_memory >= 0 and n_compute >= 0, "counts must be >= 0")
    require(n_memory + n_compute >= 1, "workload needs at least one app")
    rng = make_rng(seed, "generator", f"mix-{n_memory}-{n_compute}")
    mem_pool = list(memory_apps())
    cpu_pool = list(compute_apps())
    chosen: list[str] = []
    chosen.extend(_draw(rng, mem_pool, n_memory))
    chosen.extend(_draw(rng, cpu_pool, n_compute))
    rng.shuffle(chosen)
    return WorkloadSpec(
        name=name or f"gen-{n_memory}m{n_compute}c-s{seed}",
        apps=tuple(chosen),
        include_kmeans=include_kmeans,
        threads_per_app=threads_per_app,
    )


def random_workload(
    seed: int = 0,
    n_apps: int = 4,
    include_kmeans: bool = True,
    threads_per_app: int = 8,
) -> WorkloadSpec:
    """A uniformly random mix of ``n_apps`` applications."""
    require(n_apps >= 1, "n_apps must be >= 1")
    rng = make_rng(seed, "generator", f"random-{n_apps}")
    pool = list(memory_apps()) + list(compute_apps())
    chosen = _draw(rng, pool, n_apps)
    return WorkloadSpec(
        name=f"rand-{n_apps}-s{seed}",
        apps=tuple(chosen),
        include_kmeans=include_kmeans,
        threads_per_app=threads_per_app,
    )


def _draw(rng: np.random.Generator, pool: list[str], k: int) -> list[str]:
    """Draw ``k`` names, without replacement until the pool is exhausted."""
    out: list[str] = []
    available = list(pool)
    for _ in range(k):
        if not available:
            available = list(pool)
        idx = int(rng.integers(len(available)))
        out.append(available.pop(idx))
    return out
