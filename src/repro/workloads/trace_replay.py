"""Trace-driven workloads: replay recorded counter streams as benchmarks.

The built-in Rodinia models are hand-calibrated; this module lets a user
drive the simulator with *measured* behaviour instead:

* :func:`trace_from_samples` converts a sequence of per-window counter
  readings — ``(instructions, llc_accesses, llc_misses)``, exactly what
  ``perf stat -I`` or this library's own :class:`CounterWindow` sampling
  produces — into a :class:`~repro.sim.phases.PhaseTrace`;
* :func:`benchmark_from_csv` builds a :class:`BenchmarkSpec` from such
  samples stored as CSV (one row per sampling window);
* :func:`record_benchmark_trace` extracts the counter stream of a
  benchmark from a simulated run, closing the loop (a recorded run can be
  replayed as a workload).

The conversion is behaviour-preserving at quantum granularity: each
sampling window becomes one phase segment whose ``api``/``miss_ratio``
reproduce the window's observed ratios.  The compute intensity ``cpi``
cannot be recovered from memory counters alone and defaults to a caller-
supplied estimate.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from repro.sim.phases import PhaseSegment, PhaseTrace
from repro.sim.results import RunResult
from repro.workloads.benchmark import BenchmarkSpec
from repro.util.validation import check_positive, require

__all__ = [
    "trace_from_samples",
    "benchmark_from_samples",
    "benchmark_from_csv",
    "record_benchmark_trace",
]

#: A counter sample: (instructions, llc_accesses, llc_misses).
Sample = tuple[float, float, float]


def trace_from_samples(
    samples: Sequence[Sample],
    cpi: float = 1.0,
    min_instructions: float = 1.0,
) -> PhaseTrace:
    """Convert counter windows into a phase trace.

    Windows with fewer than ``min_instructions`` retired instructions are
    skipped (idle/barrier windows carry no behavioural information).
    Consecutive windows with identical ratios are merged into one segment.
    """
    check_positive(cpi, "cpi")
    segments: list[PhaseSegment] = []
    for i, (instr, accesses, misses) in enumerate(samples):
        if instr < min_instructions:
            continue
        require(accesses >= 0 and misses >= 0, f"sample {i} has negative counters")
        require(
            misses <= accesses or accesses == 0,
            f"sample {i}: misses exceed accesses",
        )
        api = accesses / instr
        miss_ratio = (misses / accesses) if accesses > 0 else 0.0
        if (
            segments
            and abs(segments[-1].api - api) < 1e-12
            and abs(segments[-1].miss_ratio - miss_ratio) < 1e-12
        ):
            prev = segments.pop()
            segments.append(
                PhaseSegment(prev.work + instr, cpi, api, miss_ratio)
            )
        else:
            segments.append(PhaseSegment(instr, cpi, api, miss_ratio))
    require(segments, "no usable samples (all below min_instructions?)")
    return PhaseTrace(segments)


def benchmark_from_samples(
    name: str,
    samples: Sequence[Sample],
    cpi: float = 1.0,
    n_threads: int = 8,
    intensity: str | None = None,
) -> BenchmarkSpec:
    """A :class:`BenchmarkSpec` whose threads replay ``samples``.

    ``intensity`` defaults to the trace's own classification (mean miss
    ratio against the paper's 10 % threshold).  ``work_scale`` applies at
    build time by uniformly scaling every segment's work.
    """
    base = trace_from_samples(samples, cpi=cpi)
    if intensity is None:
        intensity = "M" if base.mean_miss_ratio() > 0.10 else "C"

    def build(rng, scale: float) -> PhaseTrace:
        return PhaseTrace(
            [
                PhaseSegment(seg.work * scale, seg.cpi, seg.api, seg.miss_ratio)
                for seg in base.segments
            ]
        )

    return BenchmarkSpec(name, intensity, build, n_threads=n_threads)


def benchmark_from_csv(
    path: str | Path,
    name: str | None = None,
    cpi: float = 1.0,
    n_threads: int = 8,
) -> BenchmarkSpec:
    """Load counter samples from CSV.

    Expected columns (header required, extra columns ignored):
    ``instructions,llc_accesses,llc_misses``.
    """
    path = Path(path)
    samples: list[Sample] = []
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        require(
            reader.fieldnames is not None
            and {"instructions", "llc_accesses", "llc_misses"}
            <= set(reader.fieldnames),
            f"{path} must have columns instructions,llc_accesses,llc_misses",
        )
        for row in reader:
            samples.append(
                (
                    float(row["instructions"]),
                    float(row["llc_accesses"]),
                    float(row["llc_misses"]),
                )
            )
    return benchmark_from_samples(
        name or path.stem, samples, cpi=cpi, n_threads=n_threads
    )


def record_benchmark_trace(
    result: RunResult, benchmark: str, member: int = 0
) -> list[Sample]:
    """Extract one thread's counter stream from a traced run.

    Requires the run to have been recorded with ``record_timeseries=True``
    — note the access-rate series records *rates*; instructions and
    accesses are reconstructed per quantum from the rates and quantum
    lengths, so replaying a recording reproduces behaviour at quantum
    granularity, not exactly.
    """
    require(result.trace is not None, "run has no trace attached")
    trace = result.trace
    require(
        trace.record_timeseries and trace.times,
        "run was not recorded with timeseries enabled",
    )
    bench = result.benchmark_named(benchmark)
    # Thread ids are dense in group-build order, so the group's tid range
    # is the cumulative thread count of the groups before it.
    offset = 0
    for b in result.benchmarks:
        if b.benchmark == benchmark and b.group_id == bench.group_id:
            break
        offset += len(b.thread_finish_times)
    tid = offset + member
    samples: list[Sample] = []
    for q, rates in enumerate(trace.access_rates):
        rate = rates.get(tid)
        if rate is None:
            continue
        qlen = trace.quantum_lengths[q]
        misses = rate * qlen
        # api/miss split is not recorded; approximate a 3x access:miss ratio
        accesses = misses * 3.0
        instructions = max(misses * 40.0, 1.0)
        samples.append((instructions, accesses, misses))
    require(samples, f"thread {tid} never appeared in the trace")
    return samples
