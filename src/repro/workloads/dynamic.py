"""Deprecated shim: open-system workloads moved to :mod:`repro.traffic`.

The traffic subsystem subsumes this module: arrival processes
(:mod:`repro.traffic.generators`) sample schema-versioned job traces,
:class:`repro.traffic.TrafficWorkload` replays them through the engine,
and :mod:`repro.traffic.tracker` computes per-job latency/slowdown tail
metrics.  The historical names keep working here — with a
``DeprecationWarning`` on first access — and behave bit-identically:

* ``DynamicWorkload(name, entries, threads_per_app)`` constructs a
  :class:`~repro.traffic.replay.TrafficWorkload` (one ``Job`` per entry);
  ``build`` produces the same process groups as before.
* ``poisson_arrivals(...)`` delegates to
  :class:`~repro.traffic.generators.PoissonProcess` with the historical
  RNG label path ``("dynamic", "poisson")`` — same timetable per seed.
* ``phased_workload(...)`` is re-exported from
  :mod:`repro.traffic.replay` unchanged.
"""

from __future__ import annotations

import warnings
from typing import Any

__all__ = ["DynamicWorkload", "phased_workload", "poisson_arrivals"]

_REPLACEMENTS = {
    "DynamicWorkload": "repro.traffic.TrafficWorkload",
    "phased_workload": "repro.traffic.phased_workload",
    "poisson_arrivals": "repro.traffic.PoissonProcess",
}


def _resolve(name: str) -> Any:
    from repro.traffic import replay

    return {
        "DynamicWorkload": replay._LegacyDynamicWorkload,
        "phased_workload": replay.phased_workload,
        "poisson_arrivals": replay._legacy_poisson_arrivals,
    }[name]


def __getattr__(name: str) -> Any:
    if name in _REPLACEMENTS:
        warnings.warn(
            f"repro.workloads.dynamic.{name} is deprecated; use "
            f"{_REPLACEMENTS[name]} instead (see docs/traffic.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        return _resolve(name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
