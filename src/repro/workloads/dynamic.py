"""Open-system (dynamic) workloads: applications arriving over time.

The paper motivates runtime adaptation with exactly this scenario: "we
expect application workload to vary as a function of time as threads will
enter and leave the systems" (§III-F).  A :class:`DynamicWorkload` is a
timetable of benchmark instances; building it produces process groups with
staggered ``arrival_s`` values that the engine activates on time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.process import ProcessGroup
from repro.workloads.benchmark import BenchmarkSpec, instantiate
from repro.workloads.rodinia import APP_REGISTRY, app
from repro.util.rng import make_rng
from repro.util.validation import check_non_negative, require

__all__ = ["DynamicWorkload", "phased_workload", "poisson_arrivals"]


@dataclass(frozen=True)
class DynamicWorkload:
    """A timetable of ``(application, arrival_s)`` entries.

    Unlike :class:`~repro.workloads.suite.WorkloadSpec` (closed system,
    everything starts at t=0), instances arrive at their scheduled time and
    the machine's load — and therefore the optimal scheduler configuration
    — changes as the run progresses.
    """

    name: str
    entries: tuple[tuple[str, float], ...]
    threads_per_app: int = 8

    def __post_init__(self) -> None:
        require(len(self.entries) >= 1, "a dynamic workload needs entries")
        for app_name, arrival in self.entries:
            require(app_name in APP_REGISTRY, f"unknown application {app_name!r}")
            check_non_negative(arrival, "arrival")
        require(self.threads_per_app >= 1, "threads_per_app must be >= 1")

    @property
    def n_threads(self) -> int:
        return len(self.entries) * self.threads_per_app

    def build(self, seed: int, work_scale: float = 1.0) -> list[ProcessGroup]:
        """Instantiate process groups with dense global thread ids.

        Arrival times scale with ``work_scale`` so reduced-scale runs keep
        the same arrival pattern relative to benchmark lengths.
        """
        groups: list[ProcessGroup] = []
        tid = 0
        for gid, (app_name, arrival) in enumerate(self.entries):
            spec = app(app_name)
            if spec.n_threads != self.threads_per_app:
                spec = BenchmarkSpec(
                    spec.name,
                    spec.intensity,
                    spec.build_trace,
                    n_threads=self.threads_per_app,
                    barrier_fractions=spec.barrier_fractions,
                    thread_jitter=spec.thread_jitter,
                )
            group = instantiate(spec, gid, tid, seed, work_scale)
            group.arrival_s = arrival * work_scale
            groups.append(group)
            tid += spec.n_threads
        return groups


def phased_workload(
    name: str = "phased",
    threads_per_app: int = 8,
) -> DynamicWorkload:
    """A workload whose class changes mid-run.

    Phase 1 (t=0) is compute-leaning (UC-ish); at t=40 the memory apps
    arrive and flip the system toward UM — the configuration that was right
    for phase 1 is wrong for phase 2, which is what the Optimizer exists
    to fix.  Arrival times assume ``work_scale=1`` and scale with it.
    """
    return DynamicWorkload(
        name=name,
        entries=(
            ("srad", 0.0),
            ("leukocyte", 0.0),
            ("jacobi", 0.0),
            ("kmeans", 0.0),
            ("stream_omp", 40.0),
            ("streamcluster", 40.0),
            ("needle", 55.0),
        ),
        threads_per_app=threads_per_app,
    )


def poisson_arrivals(
    n_instances: int = 8,
    mean_interarrival_s: float = 15.0,
    seed: int = 0,
    name: str | None = None,
    threads_per_app: int = 8,
) -> DynamicWorkload:
    """Random open-system trace: apps drawn uniformly, Poisson arrivals."""
    require(n_instances >= 1, "n_instances must be >= 1")
    rng = make_rng(seed, "dynamic", "poisson")
    apps = sorted(APP_REGISTRY)
    t = 0.0
    entries = []
    for _ in range(n_instances):
        entries.append((apps[int(rng.integers(len(apps)))], t))
        t += float(rng.exponential(mean_interarrival_s))
    return DynamicWorkload(
        name=name or f"poisson-{n_instances}-s{seed}",
        entries=tuple(entries),
        threads_per_app=threads_per_app,
    )
