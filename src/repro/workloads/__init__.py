"""Workload models: Rodinia application traces and the Table II suite."""

from repro.workloads.benchmark import BenchmarkSpec, instantiate
from repro.workloads.dynamic import DynamicWorkload, phased_workload, poisson_arrivals
from repro.workloads.generator import random_workload, workload_with_mix
from repro.workloads.trace_replay import (
    benchmark_from_csv,
    benchmark_from_samples,
    record_benchmark_trace,
    trace_from_samples,
)
from repro.workloads.rodinia import (
    APP_REGISTRY,
    app,
    compute_apps,
    memory_apps,
)
from repro.workloads.suite import (
    WORKLOAD_TABLE,
    WorkloadSpec,
    all_workloads,
    workload,
    workloads_of_class,
)

__all__ = [
    "BenchmarkSpec",
    "instantiate",
    "DynamicWorkload",
    "phased_workload",
    "poisson_arrivals",
    "random_workload",
    "workload_with_mix",
    "benchmark_from_csv",
    "benchmark_from_samples",
    "record_benchmark_trace",
    "trace_from_samples",
    "APP_REGISTRY",
    "app",
    "compute_apps",
    "memory_apps",
    "WORKLOAD_TABLE",
    "WorkloadSpec",
    "all_workloads",
    "workload",
    "workloads_of_class",
]
