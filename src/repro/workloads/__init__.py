"""Workload models: Rodinia application traces and the Table II suite."""

from repro.workloads.benchmark import BenchmarkSpec, instantiate
from repro.workloads.generator import random_workload, workload_with_mix
from repro.workloads.trace_replay import (
    benchmark_from_csv,
    benchmark_from_samples,
    record_benchmark_trace,
    trace_from_samples,
)
from repro.workloads.rodinia import (
    APP_REGISTRY,
    app,
    compute_apps,
    memory_apps,
)
from repro.workloads.suite import (
    WORKLOAD_TABLE,
    WorkloadSpec,
    all_workloads,
    workload,
    workloads_of_class,
)

#: Deprecated open-system names (now repro.traffic); resolved lazily so
#: importing the package stays warning-free — the shim module warns on use.
_DEPRECATED_DYNAMIC = ("DynamicWorkload", "phased_workload", "poisson_arrivals")


def __getattr__(name: str):
    if name in _DEPRECATED_DYNAMIC:
        from repro.workloads import dynamic

        return getattr(dynamic, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BenchmarkSpec",
    "instantiate",
    "DynamicWorkload",
    "phased_workload",
    "poisson_arrivals",
    "random_workload",
    "workload_with_mix",
    "benchmark_from_csv",
    "benchmark_from_samples",
    "record_benchmark_trace",
    "trace_from_samples",
    "APP_REGISTRY",
    "app",
    "compute_apps",
    "memory_apps",
    "WORKLOAD_TABLE",
    "WorkloadSpec",
    "all_workloads",
    "workload",
    "workloads_of_class",
]
