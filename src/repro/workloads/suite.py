"""The paper's 16-workload evaluation suite (Table II).

Each workload is four Rodinia applications x 8 threads, plus the KMEANS
contention generator x 8 threads (40 threads total, one per virtual core of
the Table I machine).  Workloads are classed Balanced (2M/2C), Unbalanced-
Compute (1M/3C) or Unbalanced-Memory (3M/1C) by the nominal intensity of
the four main applications; the schedulers receive none of this a-priori
information.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.process import ProcessGroup
from repro.workloads.benchmark import BenchmarkSpec, instantiate
from repro.workloads.rodinia import APP_REGISTRY, app, kmeans
from repro.util.validation import require

__all__ = [
    "WorkloadSpec",
    "WORKLOAD_TABLE",
    "workload",
    "all_workloads",
    "workloads_of_class",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """One multi-application workload.

    Parameters
    ----------
    name:
        ``"wl1"`` ... ``"wl16"`` (or a custom name for generated workloads).
    apps:
        The four main application names (Table II row).
    include_kmeans:
        Add the 8-thread KMEANS instance (on by default, as in the paper).
    threads_per_app:
        Threads per application instance (8 in the paper).
    """

    name: str
    apps: tuple[str, ...]
    include_kmeans: bool = True
    threads_per_app: int = 8

    def __post_init__(self) -> None:
        require(len(self.apps) >= 1, "a workload needs at least one app")
        for a in self.apps:
            require(a in APP_REGISTRY, f"unknown application {a!r}")
        require(self.threads_per_app >= 1, "threads_per_app must be >= 1")

    @property
    def specs(self) -> tuple[BenchmarkSpec, ...]:
        """Benchmark specs for the main apps (kmeans excluded)."""
        return tuple(app(a) for a in self.apps)

    @property
    def n_memory(self) -> int:
        return sum(1 for s in self.specs if s.intensity == "M")

    @property
    def n_compute(self) -> int:
        return sum(1 for s in self.specs if s.intensity == "C")

    @property
    def workload_class(self) -> str:
        """``"B"``, ``"UC"`` or ``"UM"`` per the paper's classification."""
        if self.n_memory == self.n_compute:
            return "B"
        return "UC" if self.n_compute > self.n_memory else "UM"

    @property
    def n_threads(self) -> int:
        n = len(self.apps) * self.threads_per_app
        if self.include_kmeans:
            n += self.threads_per_app
        return n

    def build(self, seed: int, work_scale: float = 1.0) -> list[ProcessGroup]:
        """Instantiate process groups with dense global thread ids."""
        groups: list[ProcessGroup] = []
        tid = 0
        for gid, name in enumerate(self.apps):
            spec = app(name)
            if spec.n_threads != self.threads_per_app:
                spec = BenchmarkSpec(
                    spec.name,
                    spec.intensity,
                    spec.build_trace,
                    n_threads=self.threads_per_app,
                    barrier_fractions=spec.barrier_fractions,
                    thread_jitter=spec.thread_jitter,
                )
            groups.append(instantiate(spec, gid, tid, seed, work_scale))
            tid += spec.n_threads
        if self.include_kmeans:
            spec = kmeans()
            if spec.n_threads != self.threads_per_app:
                spec = BenchmarkSpec(
                    spec.name,
                    spec.intensity,
                    spec.build_trace,
                    n_threads=self.threads_per_app,
                    barrier_fractions=spec.barrier_fractions,
                    thread_jitter=spec.thread_jitter,
                )
            groups.append(instantiate(spec, len(self.apps), tid, seed, work_scale))
        return groups


#: Table II verbatim: workload name -> the four main applications.
WORKLOAD_TABLE: dict[str, tuple[str, ...]] = {
    # Balanced (2 M / 2 C)
    "wl1": ("jacobi", "needle", "leukocyte", "lavaMD"),
    "wl2": ("jacobi", "streamcluster", "hotspot", "srad"),
    "wl3": ("streamcluster", "needle", "hotspot", "lavaMD"),
    "wl4": ("jacobi", "streamcluster", "lavaMD", "heartwall"),
    "wl5": ("streamcluster", "needle", "leukocyte", "hotspot"),
    "wl6": ("jacobi", "needle", "heartwall", "srad"),
    # Unbalanced-Compute (1 M / 3 C)
    "wl7": ("jacobi", "lavaMD", "leukocyte", "srad"),
    "wl8": ("needle", "hotspot", "leukocyte", "heartwall"),
    "wl9": ("streamcluster", "heartwall", "leukocyte", "srad"),
    "wl10": ("jacobi", "hotspot", "leukocyte", "heartwall"),
    "wl11": ("needle", "lavaMD", "hotspot", "srad"),
    # Unbalanced-Memory (3 M / 1 C)
    "wl12": ("jacobi", "needle", "streamcluster", "lavaMD"),
    "wl13": ("jacobi", "needle", "stream_omp", "leukocyte"),
    "wl14": ("streamcluster", "needle", "stream_omp", "lavaMD"),
    "wl15": ("jacobi", "streamcluster", "stream_omp", "hotspot"),
    "wl16": ("jacobi", "needle", "streamcluster", "srad"),
}


def workload(name: str, include_kmeans: bool = True) -> WorkloadSpec:
    """Look up a Table II workload by name (``"wl1"`` .. ``"wl16"``)."""
    try:
        apps = WORKLOAD_TABLE[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOAD_TABLE)}"
        ) from None
    return WorkloadSpec(name=name, apps=apps, include_kmeans=include_kmeans)


def all_workloads(include_kmeans: bool = True) -> list[WorkloadSpec]:
    """All 16 workloads in Table II order."""
    return [workload(n, include_kmeans) for n in WORKLOAD_TABLE]


def workloads_of_class(workload_class: str, include_kmeans: bool = True) -> list[WorkloadSpec]:
    """Workloads of one class: ``"B"``, ``"UC"`` or ``"UM"``."""
    require(workload_class in ("B", "UC", "UM"), "class must be B, UC or UM")
    return [w for w in all_workloads(include_kmeans) if w.workload_class == workload_class]
