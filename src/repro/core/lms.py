"""LMS-style access-rate prediction as a Dike stage substitution.

The paper's Predictor assumes *persistence of demand*: a thread that
does not move keeps its measured access rate (Eqn. 1's ``AccessRate``
term).  Policy ``dike-lms`` replaces that assumption with a per-thread
**normalized least-mean-squares (NLMS) adaptive filter** over the recent
rate history — the LMS-AR idea (PAPERS.md): each quantum the filter
predicts the thread's next rate from its last ``taps`` measurements and
corrects its weights against the realised value,

.. math::

    \\hat{y} = w \\cdot x, \\qquad
    w \\leftarrow w + \\mu \\, (y - \\hat{y}) \\,
        \\frac{x}{x \\cdot x + \\varepsilon},

so phase changes (a benchmark entering a streaming region) feed into the
profit model one quantum sooner than persistence can.

This is a **stage substitution, not a model fork**: the LMS stage swaps
the *rate estimates* fed into the unchanged closed-loop Predictor
(Eqns 1-3) by handing it an `ObserverReport` whose ``access_rate`` map
carries the one-step-ahead predictions.  Everything downstream — profit
arithmetic, ``ProfitEvaluated`` events, the Decider's vetoes, the
prediction-error bookkeeping — is the paper's machinery verbatim, so the
full five-rule invariant contract (`repro.obs.invariants.RULES`) holds.

Per-run mutable state (the filters) lives on the scheduler subclass,
never on the stage object: stages are stateless-by-convention shared
singletons (see `repro.schedulers.pipeline`).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.config import DikeConfig
from repro.core.dike import DIKE_STAGES, DikeScheduler, PredictorStage
from repro.core.observer import ObserverReport
from repro.schedulers.base import SchedulingContext
from repro.schedulers.pipeline import Stage, StageState
from repro.util.validation import require

__all__ = [
    "LMSRatePredictor",
    "LMSPredictorStage",
    "LMS_STAGES",
    "LMSDikeScheduler",
]

#: Regulariser of the NLMS normalisation term — keeps the update finite
#: for an all-zero history (an idle thread).
_EPS = 1e-12


class LMSRatePredictor:
    """Per-thread NLMS filters over recent access-rate history.

    ``update`` first *corrects* each filter against the newly measured
    rate (the quantum's ground truth for last quantum's prediction),
    then appends the measurement to the history; ``predict`` applies the
    corrected weights to the latest window.  A thread without a full
    history window falls back to persistence — exactly the baseline
    model — so cold starts behave like stock Dike.
    """

    def __init__(self, taps: int = 4, mu: float = 0.5) -> None:
        require(taps >= 1, "taps must be >= 1")
        require(0.0 < mu <= 2.0, "mu must be in (0, 2] (NLMS stability)")
        self.taps = taps
        self.mu = mu
        #: tid -> last ``taps`` measured rates, oldest first
        self._history: dict[int, list[float]] = {}
        #: tid -> filter weights, aligned with the history window
        self._weights: dict[int, np.ndarray] = {}

    def update(self, rates: dict[int, float]) -> None:
        """Fold this quantum's measurements into every thread's filter."""
        for tid, rate in rates.items():
            hist = self._history.setdefault(tid, [])
            if len(hist) == self.taps:
                x = np.asarray(hist)
                w = self._weights.setdefault(tid, np.zeros(self.taps))
                error = rate - float(w @ x)
                w += self.mu * error * x / (float(x @ x) + _EPS)
            hist.append(float(rate))
            if len(hist) > self.taps:
                del hist[0]

    def prune(self, live: dict[int, int]) -> None:
        """Forget threads that left the system (finished jobs)."""
        for tid in list(self._history):
            if tid not in live:
                del self._history[tid]
                self._weights.pop(tid, None)

    def predict(self, tid: int, fallback: float) -> float:
        """One-step-ahead rate for ``tid``; persistence until warmed up."""
        hist = self._history.get(tid)
        if hist is None or len(hist) < self.taps:
            return fallback
        w = self._weights.get(tid)
        if w is None:
            return fallback
        predicted = float(w @ np.asarray(hist))
        return max(predicted, 0.0)

    def predicted_rates(self, report: ObserverReport) -> dict[int, float]:
        """The report's ``access_rate`` map with warmed-up threads
        replaced by their filter predictions."""
        return {
            tid: self.predict(tid, rate)
            for tid, rate in report.access_rate.items()
        }


class LMSPredictorStage(Stage):
    """The Predictor stage fed LMS-predicted rates instead of measured.

    Updates the filters with the quantum's measurements, then runs the
    unchanged Eqns 1-3 Predictor on a shadow report carrying each
    thread's one-step-ahead rate — profits, events and predicted
    post-swap rates all follow from the filtered estimates.
    """

    name = "predictor"

    def run(self, pipeline: "LMSDikeScheduler", state: StageState) -> None:
        with pipeline.stage_timer(self):
            lms = pipeline.lms
            lms.update(state.report.access_rate)
            lms.prune(state.placement)
            shadow = replace(
                state.report, access_rate=lms.predicted_rates(state.report)
            )
            state.predictions = pipeline.predictor.predict(
                state.pairs, shadow, state.placement
            )


#: Dike's pipeline with the Predictor stage replaced by the LMS variant.
LMS_STAGES: tuple[Stage, ...] = tuple(
    LMSPredictorStage() if isinstance(s, PredictorStage) else s
    for s in DIKE_STAGES
)


class LMSDikeScheduler(DikeScheduler):
    """Dike with NLMS access-rate prediction (policy ``dike-lms``)."""

    def __init__(
        self,
        config: DikeConfig | None = None,
        name: str = "dike-lms",
        lms_taps: int = 4,
        lms_mu: float = 0.5,
    ) -> None:
        super().__init__(config, name=name, stages=LMS_STAGES)
        require(lms_taps >= 1, "lms_taps must be >= 1")
        require(0.0 < lms_mu <= 2.0, "lms_mu must be in (0, 2]")
        self.lms_taps = lms_taps
        self.lms_mu = lms_mu

    def prepare(self, context: SchedulingContext) -> None:
        super().prepare(context)
        self.lms = LMSRatePredictor(self.lms_taps, self.lms_mu)

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info["lms_taps"] = self.lms_taps
        info["lms_mu"] = self.lms_mu
        return info
