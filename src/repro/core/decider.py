"""Dike's Decider: per-pair acceptance (§III-D).

Each predicted pair is judged independently:

* **cooldown** — "to prevent excessive overhead on a thread, Dike does not
  swap a thread in consecutive quanta"; a pair containing a thread migrated
  within the last ``cooldown_quanta`` quanta *or* the last ``cooldown_s``
  seconds is skipped.  The time floor keeps the per-thread migration rate
  configuration-independent (otherwise a 100 ms quantum would swap a thread
  5x as often as a 500 ms one, which is exactly the "excessive overhead"
  the rule exists to prevent);
* **profit** — pairs with negative ``totalProfit`` are dropped (the swap
  would reduce aggregate memory throughput more than it helps).
"""

from __future__ import annotations

from repro.core.config import DikeConfig
from repro.core.predictor import PairPrediction
from repro.obs.events import NULL_BUS, PairVetoed

__all__ = ["Decider"]


class Decider:
    """Stateful filter tracking recent migrations for the cooldown rule.

    Each rejection is observable: ``last_vetoes`` holds this quantum's
    ``(prediction, reason)`` pairs, a ``PairVetoed`` event is emitted per
    rejection, and the bus metrics count ``dike.veto.<reason>``.  Reasons
    are ``"cooldown"``, ``"claimed"`` and ``"negative_profit"``.
    """

    def __init__(self, config: DikeConfig) -> None:
        self.config = config
        self.bus = NULL_BUS
        #: tid -> (quantum index, time) of that thread's most recent migration
        self._last_swap: dict[int, tuple[int, float]] = {}
        #: (prediction, reason) rejections from the most recent decide()
        self.last_vetoes: list[tuple[PairPrediction, str]] = []

    def reset(self) -> None:
        self._last_swap.clear()
        self.last_vetoes = []

    def decide(
        self,
        predictions: list[PairPrediction],
        quantum_index: int,
        time_s: float = float("inf"),
    ) -> list[PairPrediction]:
        """Return the accepted subset of ``predictions`` (order preserved).

        ``quantum_index``/``time_s`` identify the quantum boundary at which
        the decision is made; a thread swapped at ``(q, t)`` is ineligible
        while ``index - q <= cooldown_quanta`` or ``time - t < cooldown_s``.
        """
        accepted: list[PairPrediction] = []
        self.last_vetoes = []
        claimed: set[int] = set()
        for pred in predictions:
            pair = pred.pair
            if self._in_cooldown(pair.t_l, quantum_index, time_s) or self._in_cooldown(
                pair.t_h, quantum_index, time_s
            ):
                self._veto(pred, "cooldown")
                continue
            if pair.t_l in claimed or pair.t_h in claimed:
                # A thread can move at most once per quantum.
                self._veto(pred, "claimed")
                continue
            if self.config.require_positive_profit and pred.total_profit < 0.0:
                # A swap must "benefit fairness or performance": negative
                # profit is acceptable only when the swap is predicted to
                # shrink the pair's rate spread (fairness) and the loss is
                # within the migration-overhead scale — equalising rotations
                # between near-equivalent cores land here.
                tolerance = 0.1 * (pred.current_rate_l + pred.current_rate_h)
                if not (pred.fairness_benefit and pred.total_profit >= -tolerance):
                    self._veto(pred, "negative_profit")
                    continue
            accepted.append(pred)
            claimed.update((pair.t_l, pair.t_h))
        for pred in accepted:
            self._last_swap[pred.pair.t_l] = (quantum_index, time_s)
            self._last_swap[pred.pair.t_h] = (quantum_index, time_s)
        return accepted

    def _veto(self, pred: PairPrediction, reason: str) -> None:
        self.last_vetoes.append((pred, reason))
        if self.bus.enabled:
            self.bus.emit(
                PairVetoed(
                    *self.bus.now,
                    t_l=pred.pair.t_l,
                    t_h=pred.pair.t_h,
                    reason=reason,
                )
            )
        if self.bus.metrics is not None:
            self.bus.metrics.counter(f"dike.veto.{reason}").inc()

    def _in_cooldown(self, tid: int, quantum_index: int, time_s: float) -> bool:
        last = self._last_swap.get(tid)
        if last is None:
            return False
        last_q, last_t = last
        if self.config.cooldown_quanta > 0 and (
            quantum_index - last_q
        ) <= self.config.cooldown_quanta:
            return True
        if self.config.cooldown_s > 0 and (time_s - last_t) < self.config.cooldown_s:
            return True
        return False

    def forget_thread(self, tid: int) -> None:
        """Drop cooldown state for a finished thread."""
        self._last_swap.pop(tid, None)
