"""The Dike scheduler: Observer -> Selector -> Predictor -> Decider ->
Migrator, with the Optimizer adapting the key parameters (Figure 3).

``DikeScheduler`` wires the five per-quantum components behind the common
:class:`~repro.schedulers.base.Scheduler` interface, and additionally keeps
the **closed loop's books**: every accepted swap registers a predicted
post-swap access rate, and the next quantum's measurement back-fills the
ground truth — producing the prediction-error records behind Figures 7/8.

Three factory functions build the paper's three evaluated instantiations:

* :func:`dike` — non-adaptive, fixed ⟨swapSize=8, quantaLength=500 ms⟩;
* :func:`dike_af` — adaptive, favouring fairness;
* :func:`dike_ap` — adaptive, favouring performance.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import AdaptationGoal, DikeConfig
from repro.core.decider import Decider
from repro.core.migrator import Migrator
from repro.core.observer import Observer
from repro.core.optimizer import Optimizer
from repro.core.predictor import Predictor
from repro.core.selector import Selector
from repro.obs.events import NULL_BUS
from repro.schedulers.base import Action, Scheduler, SchedulingContext
from repro.sim.counters import QuantumCounters
from repro.sim.results import PredictionRecord

__all__ = ["DikeScheduler", "dike", "dike_af", "dike_ap"]


class _NullTimer:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_TIMER = _NullTimer()


def _maybe_timer(metrics, name: str):
    """A stage wall-time timer, or a no-op when metrics are off."""
    return _NULL_TIMER if metrics is None else metrics.timer(name)


class DikeScheduler(Scheduler):
    """Predictive, adaptive contention-aware scheduler (the paper's system)."""

    def __init__(self, config: DikeConfig | None = None, name: str | None = None) -> None:
        self.config = config or DikeConfig()
        if name is not None:
            self.name = name
        elif self.config.goal is AdaptationGoal.FAIRNESS:
            self.name = "dike-af"
        elif self.config.goal is AdaptationGoal.PERFORMANCE:
            self.name = "dike-ap"
        else:
            self.name = "dike"
        self._initial_config = self.config

    # ----------------------------------------------------------- lifecycle

    def prepare(self, context: SchedulingContext) -> None:
        super().prepare(context)
        self.config = self._initial_config
        groups = {t.tid: t.group for t in context.threads}
        self.observer = Observer(self.config, context.topology.n_vcores, groups)
        self.selector = Selector(self.config)
        self.predictor = Predictor(self.config)
        self.decider = Decider(self.config)
        self.migrator = Migrator()
        self.optimizer = Optimizer(self.config)
        # Observability: every stage shares the run's event bus + metrics.
        self.bus = context.bus
        self.metrics = context.bus.metrics
        for stage in (
            self.observer, self.selector, self.predictor,
            self.decider, self.migrator, self.optimizer,
        ):
            stage.bus = context.bus
        #: tid -> (quantum_index_of_prediction, time_s, predicted_rate)
        self._pending: dict[int, tuple[int, float, float]] = {}
        self._records: list[PredictionRecord] = []
        #: (quantum_index, swap_size, quanta_length_s) adaptation trajectory
        self._config_history: list[tuple[int, int, float]] = [
            (0, self.config.swap_size, self.config.quanta_length_s)
        ]

    def quantum_length_s(self) -> float:
        return self.config.quanta_length_s

    # ------------------------------------------------------------- decision

    def decide(
        self, counters: QuantumCounters, placement: dict[int, int]
    ) -> Sequence[Action]:
        # Anchor this decision cycle's events to the quantum whose
        # counters drive it; stages stamp their events from `bus.now`.
        self.bus.at(counters.quantum_index, counters.time_s)
        with _maybe_timer(self.metrics, "dike.observer_s"):
            report = self.observer.update(counters)
        self._backfill_predictions(counters, report)

        with _maybe_timer(self.metrics, "dike.optimizer_s"):
            new_cfg = self.optimizer.maybe_update(report)
        if new_cfg is not self.config:
            self._set_config(new_cfg, counters.quantum_index)

        # Finished threads drop out of `placement`; forget their cooldowns.
        for tid in list(self.decider._last_swap):
            if tid not in placement:
                self.decider.forget_thread(tid)

        with _maybe_timer(self.metrics, "dike.selector_s"):
            pairs = self.selector.select(report, placement)
        with _maybe_timer(self.metrics, "dike.predictor_s"):
            predictions = self.predictor.predict(pairs, report, placement)
        with _maybe_timer(self.metrics, "dike.decider_s"):
            accepted = self.decider.decide(
                predictions, counters.quantum_index, counters.time_s
            )
        with _maybe_timer(self.metrics, "dike.migrator_s"):
            actions = self.migrator.build_actions(accepted)

        # Register next-quantum predictions for every live thread — the
        # quantity Figures 7/8 score.  The closed-loop model's stay-case is
        # persistence ("if thread t_l stays on the same core, we expect it
        # to keep the same access rate"); for swapped threads the moved-case
        # estimate applies: the destination core's bandwidth, capped by the
        # thread's own demand (a compute thread will not consume a fast
        # core's entire memory bandwidth no matter where it lands).
        demand = report.demand_estimate or {}
        for tid in placement:
            rate = report.access_rate.get(tid)
            if rate is not None and rate > 0.0:
                self._pending[tid] = (
                    counters.quantum_index,
                    counters.time_s,
                    rate,
                )
        for pred in accepted:
            for tid, dest_bw in (
                (pred.pair.t_l, report.core_bw.get(placement[pred.pair.t_h])),
                (pred.pair.t_h, report.core_bw.get(placement[pred.pair.t_l])),
            ):
                moved_case = dest_bw if dest_bw is not None else float("nan")
                bound = demand.get(tid, float("inf"))
                predicted = min(moved_case, bound)
                if predicted == predicted:  # not NaN
                    self._pending[tid] = (
                        counters.quantum_index,
                        counters.time_s,
                        max(predicted - self.predictor.overhead(predicted), 0.0),
                    )
        return actions

    # ------------------------------------------------------------ internals

    def _set_config(self, cfg: DikeConfig, quantum_index: int) -> None:
        self.config = cfg
        self.selector.config = cfg
        self.predictor.config = cfg
        self.decider.config = cfg
        self.observer.config = cfg
        self._config_history.append(
            (quantum_index, cfg.swap_size, cfg.quanta_length_s)
        )

    def _backfill_predictions(
        self, counters: QuantumCounters, report
    ) -> None:
        """Match predictions from the previous quantum with measurements."""
        done: list[int] = []
        for tid, (q, t, predicted) in self._pending.items():
            if counters.quantum_index <= q:
                continue
            actual = report.access_rate.get(tid)
            if actual is not None and actual > 0.0:
                self._records.append(
                    PredictionRecord(
                        time_s=t,
                        quantum_index=q,
                        tid=tid,
                        predicted_rate=predicted,
                        actual_rate=actual,
                    )
                )
                if self.metrics is not None:
                    self.metrics.histogram("dike.prediction_abs_rel_error").observe(
                        abs(predicted - actual) / actual
                    )
            done.append(tid)
        for tid in done:
            self._pending.pop(tid, None)

    def drain_prediction_records(self) -> tuple[PredictionRecord, ...]:
        records = tuple(self._records)
        self._records = []
        return records

    def describe(self) -> dict[str, object]:
        info: dict[str, object] = {"policy": self.name}
        info.update(self._initial_config.describe())
        history = getattr(self, "_config_history", None)
        if history is not None:
            info["config_history"] = tuple(history)
        return info


def dike(config: DikeConfig | None = None) -> DikeScheduler:
    """Non-adaptive Dike with the paper's default ⟨8, 500 ms⟩ (or a custom
    fixed configuration)."""
    cfg = config or DikeConfig()
    if cfg.goal is not AdaptationGoal.NONE:
        raise ValueError("use dike_af()/dike_ap() for adaptive goals")
    return DikeScheduler(cfg, name="dike")


def dike_af(config: DikeConfig | None = None) -> DikeScheduler:
    """Adaptive Dike favouring fairness (Dike-AF)."""
    cfg = config or DikeConfig()
    cfg = DikeConfig(
        quanta_length_s=cfg.quanta_length_s,
        swap_size=cfg.swap_size,
        fairness_threshold=cfg.fairness_threshold,
        goal=AdaptationGoal.FAIRNESS,
        adaptation_period=cfg.adaptation_period,
        classification_miss_threshold=cfg.classification_miss_threshold,
        corebw_window=cfg.corebw_window,
        swap_overhead_belief_s=cfg.swap_overhead_belief_s,
        cooldown_quanta=cfg.cooldown_quanta,
        require_positive_profit=cfg.require_positive_profit,
    )
    return DikeScheduler(cfg, name="dike-af")


def dike_ap(config: DikeConfig | None = None) -> DikeScheduler:
    """Adaptive Dike favouring performance (Dike-AP)."""
    cfg = config or DikeConfig()
    cfg = DikeConfig(
        quanta_length_s=cfg.quanta_length_s,
        swap_size=cfg.swap_size,
        fairness_threshold=cfg.fairness_threshold,
        goal=AdaptationGoal.PERFORMANCE,
        adaptation_period=cfg.adaptation_period,
        classification_miss_threshold=cfg.classification_miss_threshold,
        corebw_window=cfg.corebw_window,
        swap_overhead_belief_s=cfg.swap_overhead_belief_s,
        cooldown_quanta=cfg.cooldown_quanta,
        require_positive_profit=cfg.require_positive_profit,
    )
    return DikeScheduler(cfg, name="dike-ap")
