"""The Dike scheduler: Observer -> Selector -> Predictor -> Decider ->
Migrator, with the Optimizer adapting the key parameters (Figure 3).

``DikeScheduler`` is a :class:`~repro.schedulers.pipeline.StagePipeline`:
the five per-quantum components (plus the Optimizer) are a *declared
stage list* (:data:`DIKE_STAGES`), each stage a thin adapter between the
shared :class:`~repro.schedulers.pipeline.StageState` dataflow and one
component.  Ablation variants replace individual stages —
:data:`NO_PREDICTOR_STAGES` swaps the closed-loop Predictor for
persistence predictions, :data:`NO_DECIDER_STAGES` accepts every selected
pair — and the `repro.policies` registry exposes them as policies without
forking the scheduler.

Beyond the stages the scheduler keeps the **closed loop's books**: every
accepted swap registers a predicted post-swap access rate, and the next
quantum's measurement back-fills the ground truth — producing the
prediction-error records behind Figures 7/8.

The module-level factories :func:`dike` / :func:`dike_af` /
:func:`dike_ap` are **deprecated**: build schedulers through the policy
registry instead (``repro.policies.REGISTRY.build("dike-af")``), which is
the single resolution point the runner, CLI, campaign and benchmark
layers share.  The factories keep working but emit a
``DeprecationWarning``.
"""

from __future__ import annotations

import warnings

from repro.core.config import AdaptationGoal, DikeConfig
from repro.core.decider import Decider
from repro.core.migrator import Migrator
from repro.core.observer import Observer
from repro.core.optimizer import Optimizer
from repro.core.predictor import PairPrediction, Predictor
from repro.core.selector import Selector
from repro.schedulers.base import SchedulingContext
from repro.schedulers.pipeline import Stage, StagePipeline, StageState
from repro.sim.results import PredictionRecord

__all__ = [
    "DikeScheduler",
    "DIKE_STAGES",
    "NO_PREDICTOR_STAGES",
    "NO_DECIDER_STAGES",
    "ObserverStage",
    "OptimizerStage",
    "SelectorStage",
    "PredictorStage",
    "DeciderStage",
    "MigratorStage",
    "PersistencePredictorStage",
    "AcceptAllStage",
    "dike",
    "dike_af",
    "dike_ap",
]


# --------------------------------------------------------------- stages


class ObserverStage(Stage):
    """Digest the quantum's counters into an ``ObserverReport`` and
    back-fill the previous quantum's predictions with measurements."""

    name = "observer"

    def run(self, pipeline: "DikeScheduler", state: StageState) -> None:
        with pipeline.stage_timer(self):
            state.report = pipeline.observer.update(state.counters)
        pipeline._backfill_predictions(state.counters, state.report)


class OptimizerStage(Stage):
    """Periodically re-tune ⟨swapSize, quantaLength⟩ toward the goal
    (§III-F) and garbage-collect cooldown state of finished threads."""

    name = "optimizer"

    def run(self, pipeline: "DikeScheduler", state: StageState) -> None:
        with pipeline.stage_timer(self):
            new_cfg = pipeline.optimizer.maybe_update(state.report)
        if new_cfg is not pipeline.config:
            pipeline._set_config(new_cfg, state.counters.quantum_index)
        # Finished threads drop out of `placement`; forget their cooldowns.
        for tid in list(pipeline.decider._last_swap):
            if tid not in state.placement:
                pipeline.decider.forget_thread(tid)


class SelectorStage(Stage):
    """Form violator pairs via the placement rule (Algorithm 1)."""

    name = "selector"

    def run(self, pipeline: "DikeScheduler", state: StageState) -> None:
        with pipeline.stage_timer(self):
            state.pairs = pipeline.selector.select(state.report, state.placement)


class PredictorStage(Stage):
    """Estimate per-pair swap profits with the closed-loop model (Eqns 1-3)."""

    name = "predictor"

    def run(self, pipeline: "DikeScheduler", state: StageState) -> None:
        with pipeline.stage_timer(self):
            state.predictions = pipeline.predictor.predict(
                state.pairs, state.report, state.placement
            )


class DeciderStage(Stage):
    """Filter predictions by cooldown and profit (§III-D)."""

    name = "decider"

    def run(self, pipeline: "DikeScheduler", state: StageState) -> None:
        with pipeline.stage_timer(self):
            state.accepted = pipeline.decider.decide(
                state.predictions,
                state.counters.quantum_index,
                state.counters.time_s,
            )


class MigratorStage(Stage):
    """Turn accepted pairs into engine ``Swap`` actions (§III-E)."""

    name = "migrator"

    def run(self, pipeline: "DikeScheduler", state: StageState) -> None:
        with pipeline.stage_timer(self):
            state.actions = pipeline.migrator.build_actions(state.accepted)


class PersistencePredictorStage(Stage):
    """Ablation stand-in for the Predictor: persistence, no model.

    Every selected pair is predicted to keep its current access rates
    wherever it lands (zero profit either way), so the Decider degenerates
    to its cooldown rule — isolating how much of Dike's quality the
    closed-loop profit model (Eqns 1-3) contributes.  Emits no
    ``ProfitEvaluated`` events: there is no model to audit.
    """

    name = "predictor"

    def run(self, pipeline: "DikeScheduler", state: StageState) -> None:
        with pipeline.stage_timer(self):
            rates = state.report.access_rate
            state.predictions = [
                PairPrediction(
                    pair=pair,
                    profit_l=0.0,
                    profit_h=0.0,
                    predicted_rate_l=rates.get(pair.t_l, 0.0),
                    predicted_rate_h=rates.get(pair.t_h, 0.0),
                    current_rate_l=rates.get(pair.t_l, 0.0),
                    current_rate_h=rates.get(pair.t_h, 0.0),
                )
                for pair in state.pairs
            ]


class AcceptAllStage(Stage):
    """Ablation stand-in for the Decider: every predicted pair is swapped.

    Selector pairs are disjoint by construction, so accepting all of them
    is safe; what disappears is the cooldown rule and the profit veto —
    isolating how much churn the Decider's judgement avoids.  Without a
    decider no cooldown contract holds (see the policy's invariant
    contract in `repro.policies`).
    """

    name = "decider"

    def run(self, pipeline: "DikeScheduler", state: StageState) -> None:
        with pipeline.stage_timer(self):
            state.accepted = list(state.predictions)


#: The paper's pipeline (Figure 3), as a declared stage list.
DIKE_STAGES: tuple[Stage, ...] = (
    ObserverStage(),
    OptimizerStage(),
    SelectorStage(),
    PredictorStage(),
    DeciderStage(),
    MigratorStage(),
)

#: Fig6-style ablation: the closed-loop Predictor replaced by persistence.
NO_PREDICTOR_STAGES: tuple[Stage, ...] = tuple(
    PersistencePredictorStage() if isinstance(s, PredictorStage) else s
    for s in DIKE_STAGES
)

#: Fig6-style ablation: the Decider replaced by accept-everything.
NO_DECIDER_STAGES: tuple[Stage, ...] = tuple(
    AcceptAllStage() if isinstance(s, DeciderStage) else s for s in DIKE_STAGES
)


# ------------------------------------------------------------ scheduler


class DikeScheduler(StagePipeline):
    """Predictive, adaptive contention-aware scheduler (the paper's system)."""

    metric_prefix = "dike"

    def __init__(
        self,
        config: DikeConfig | None = None,
        name: str | None = None,
        stages: tuple[Stage, ...] | None = None,
    ) -> None:
        super().__init__(stages if stages is not None else DIKE_STAGES)
        self.config = config or DikeConfig()
        if name is not None:
            self.name = name
        elif self.config.goal is AdaptationGoal.FAIRNESS:
            self.name = "dike-af"
        elif self.config.goal is AdaptationGoal.PERFORMANCE:
            self.name = "dike-ap"
        else:
            self.name = "dike"
        self._initial_config = self.config

    # ----------------------------------------------------------- lifecycle

    def prepare(self, context: SchedulingContext) -> None:
        super().prepare(context)
        self.config = self._initial_config
        groups = {t.tid: t.group for t in context.threads}
        self.observer = Observer(self.config, context.topology.n_vcores, groups)
        self.selector = Selector(self.config)
        self.predictor = Predictor(self.config)
        self.decider = Decider(self.config)
        self.migrator = Migrator()
        self.optimizer = Optimizer(self.config)
        # Observability: every component shares the run's event bus.
        for component in (
            self.observer, self.selector, self.predictor,
            self.decider, self.migrator, self.optimizer,
        ):
            component.bus = context.bus
        #: tid -> (quantum_index_of_prediction, time_s, predicted_rate)
        self._pending: dict[int, tuple[int, float, float]] = {}
        self._records: list[PredictionRecord] = []
        #: (quantum_index, swap_size, quanta_length_s) adaptation trajectory
        self._config_history: list[tuple[int, int, float]] = [
            (0, self.config.swap_size, self.config.quanta_length_s)
        ]

    def quantum_length_s(self) -> float:
        return self.config.quanta_length_s

    # ------------------------------------------------------------- decision
    #
    # `decide` itself is StagePipeline.decide: run the declared stages over
    # a fresh StageState, bracketed by the two hooks below.

    def begin_quantum(self, state: StageState) -> None:
        # Anchor this decision cycle's events to the quantum whose
        # counters drive it; stages stamp their events from `bus.now`.
        self.bus.at(state.counters.quantum_index, state.counters.time_s)

    def end_quantum(self, state: StageState) -> None:
        # Register next-quantum predictions for every live thread — the
        # quantity Figures 7/8 score.  The closed-loop model's stay-case is
        # persistence ("if thread t_l stays on the same core, we expect it
        # to keep the same access rate"); for swapped threads the moved-case
        # estimate applies: the destination core's bandwidth, capped by the
        # thread's own demand (a compute thread will not consume a fast
        # core's entire memory bandwidth no matter where it lands).
        counters, report, placement = state.counters, state.report, state.placement
        demand = report.demand_estimate or {}
        for tid in placement:
            rate = report.access_rate.get(tid)
            if rate is not None and rate > 0.0:
                self._pending[tid] = (
                    counters.quantum_index,
                    counters.time_s,
                    rate,
                )
        for pred in state.accepted:
            for tid, dest_bw in (
                (pred.pair.t_l, report.core_bw.get(placement[pred.pair.t_h])),
                (pred.pair.t_h, report.core_bw.get(placement[pred.pair.t_l])),
            ):
                moved_case = dest_bw if dest_bw is not None else float("nan")
                bound = demand.get(tid, float("inf"))
                predicted = min(moved_case, bound)
                if predicted == predicted:  # not NaN
                    self._pending[tid] = (
                        counters.quantum_index,
                        counters.time_s,
                        max(predicted - self.predictor.overhead(predicted), 0.0),
                    )

    # ------------------------------------------------------------ internals

    def _set_config(self, cfg: DikeConfig, quantum_index: int) -> None:
        self.config = cfg
        self.selector.config = cfg
        self.predictor.config = cfg
        self.decider.config = cfg
        self.observer.config = cfg
        self._config_history.append(
            (quantum_index, cfg.swap_size, cfg.quanta_length_s)
        )

    def _backfill_predictions(self, counters, report) -> None:
        """Match predictions from the previous quantum with measurements."""
        done: list[int] = []
        for tid, (q, t, predicted) in self._pending.items():
            if counters.quantum_index <= q:
                continue
            actual = report.access_rate.get(tid)
            if actual is not None and actual > 0.0:
                self._records.append(
                    PredictionRecord(
                        time_s=t,
                        quantum_index=q,
                        tid=tid,
                        predicted_rate=predicted,
                        actual_rate=actual,
                    )
                )
                if self.metrics is not None:
                    self.metrics.histogram("dike.prediction_abs_rel_error").observe(
                        abs(predicted - actual) / actual
                    )
            done.append(tid)
        for tid in done:
            self._pending.pop(tid, None)

    def drain_prediction_records(self) -> tuple[PredictionRecord, ...]:
        records = tuple(self._records)
        self._records = []
        return records

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info.update(self._initial_config.describe())
        history = getattr(self, "_config_history", None)
        if history is not None:
            info["config_history"] = tuple(history)
        return info


# -------------------------------------------------- deprecated factories


def _deprecated_factory(name: str) -> None:
    warnings.warn(
        f"{name}() is deprecated; build schedulers through the policy "
        f"registry instead: repro.policies.REGISTRY.build(...)",
        DeprecationWarning,
        stacklevel=3,
    )


def dike(config: DikeConfig | None = None) -> DikeScheduler:
    """Deprecated: use ``repro.policies.REGISTRY.build("dike", params)``.

    Non-adaptive Dike with the paper's default ⟨8, 500 ms⟩ (or a custom
    fixed configuration)."""
    _deprecated_factory("dike")
    cfg = config or DikeConfig()
    if cfg.goal is not AdaptationGoal.NONE:
        raise ValueError("use dike_af()/dike_ap() for adaptive goals")
    return DikeScheduler(cfg, name="dike")


def dike_af(config: DikeConfig | None = None) -> DikeScheduler:
    """Deprecated: use ``repro.policies.REGISTRY.build("dike-af", params)``.

    Adaptive Dike favouring fairness (Dike-AF)."""
    _deprecated_factory("dike_af")
    cfg = config or DikeConfig()
    cfg = DikeConfig(
        quanta_length_s=cfg.quanta_length_s,
        swap_size=cfg.swap_size,
        fairness_threshold=cfg.fairness_threshold,
        goal=AdaptationGoal.FAIRNESS,
        adaptation_period=cfg.adaptation_period,
        classification_miss_threshold=cfg.classification_miss_threshold,
        corebw_window=cfg.corebw_window,
        swap_overhead_belief_s=cfg.swap_overhead_belief_s,
        cooldown_quanta=cfg.cooldown_quanta,
        require_positive_profit=cfg.require_positive_profit,
    )
    return DikeScheduler(cfg, name="dike-af")


def dike_ap(config: DikeConfig | None = None) -> DikeScheduler:
    """Deprecated: use ``repro.policies.REGISTRY.build("dike-ap", params)``.

    Adaptive Dike favouring performance (Dike-AP)."""
    _deprecated_factory("dike_ap")
    cfg = config or DikeConfig()
    cfg = DikeConfig(
        quanta_length_s=cfg.quanta_length_s,
        swap_size=cfg.swap_size,
        fairness_threshold=cfg.fairness_threshold,
        goal=AdaptationGoal.PERFORMANCE,
        adaptation_period=cfg.adaptation_period,
        classification_miss_threshold=cfg.classification_miss_threshold,
        corebw_window=cfg.corebw_window,
        swap_overhead_belief_s=cfg.swap_overhead_belief_s,
        cooldown_quanta=cfg.cooldown_quanta,
        require_positive_profit=cfg.require_positive_profit,
    )
    return DikeScheduler(cfg, name="dike-ap")
