"""Dike's Migrator: turn accepted pairs into affinity swaps (§III-E).

The Migrator "simply manipulates thread-to-core affinity mappings to swap a
thread pair's cores" — no third core is used, and the paper found the
ordering of the two moves immaterial.  In this reproduction the mechanism
is the engine's :class:`~repro.schedulers.base.Swap` action (the analogue
of two ``sched_setaffinity`` calls); the Migrator's job is the bookkeeping
between decision and enforcement.
"""

from __future__ import annotations

from repro.core.predictor import PairPrediction
from repro.obs.events import NULL_BUS
from repro.schedulers.base import Swap

__all__ = ["Migrator"]


class Migrator:
    """Stateless translation of accepted predictions into engine actions.

    The actual execution event (``SwapExecuted``, with destination cores)
    is emitted by the engine when it applies the action; the Migrator
    only counts what it hands over (``dike.actions_built``).
    """

    def __init__(self) -> None:
        self.bus = NULL_BUS

    def build_actions(self, accepted: list[PairPrediction]) -> list[Swap]:
        """One :class:`Swap` per accepted pair, in decision order."""
        actions = [
            Swap(tid_a=pred.pair.t_l, tid_b=pred.pair.t_h) for pred in accepted
        ]
        if self.bus.metrics is not None and actions:
            self.bus.metrics.counter("dike.actions_built").inc(len(actions))
        return actions
