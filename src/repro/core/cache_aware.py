"""Cache-aware fairness policies: LFOC-style clustering, BLISS-style
blacklisting.

Both are **stage substitutions** on the Dike pipeline (`repro.core.dike`):
the Observer, Predictor, Decider, Migrator and Optimizer are untouched —
only the Selector stage is replaced, so everything the registry knows
about Dike (invariant contract, parameter schema, closed-loop prediction
bookkeeping) carries over.

* **lfoc** (after LFOC, "fairness-oriented cache clustering"): per
  quantum, live threads are partitioned into *cache clusters* by access
  rate — contiguous slices of the sorted-by-rate array — and Dike's
  violator-pair selection runs *within* each cluster.  Swaps therefore
  exchange threads of comparable cache appetite, equalising progress
  inside each intensity class instead of churning streaming threads
  against compute threads.
* **bliss** (after the Blacklisting Memory Scheduler): threads whose
  access rate exceeds ``interference_threshold`` × the live mean are
  *blacklisted* — removed from pair selection — for ``blacklist_quanta``
  quanta.  The heaviest interferers sit still while the rest of the
  system rebalances around them; low complexity, most of the fairness.

Both emit :class:`~repro.obs.events.CacheClusterFormed` events (one per
cluster / one for the blacklist) so traces show the grouping behind
every selection, and both work with any memory backend — under
``OccupancyLLC`` the access rates they group by respond to cache
squeezing, which is what makes the clusters meaningful.

Per-run mutable state (the blacklist) lives on the scheduler subclass,
never on the stage objects: stages are stateless-by-convention shared
singletons (see `repro.schedulers.pipeline`).
"""

from __future__ import annotations

from repro.core.config import DikeConfig
from repro.core.dike import DIKE_STAGES, DikeScheduler, SelectorStage
from repro.core.observer import ObserverReport
from repro.core.selector import Selector, ThreadPair
from repro.obs.events import NULL_BUS, CacheClusterFormed
from repro.schedulers.base import SchedulingContext
from repro.schedulers.pipeline import Stage, StageState
from repro.util.validation import require

__all__ = [
    "CacheClusterer",
    "Blacklister",
    "ClusteredSelectorStage",
    "BlacklistSelectorStage",
    "LFOC_STAGES",
    "BLISS_STAGES",
    "LFOCScheduler",
    "BLISSScheduler",
]


class CacheClusterer:
    """LFOC-style per-quantum clustering + within-cluster selection."""

    def __init__(self, n_clusters: int) -> None:
        require(n_clusters >= 1, "n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.bus = NULL_BUS

    def partition(
        self, report: ObserverReport, placement: dict[int, int]
    ) -> list[list[int]]:
        """Contiguous slices of the sorted-by-access-rate live threads.

        At most ``n_clusters`` clusters, each with >= 2 members where
        the population allows (a 1-thread cluster can never pair).
        Deterministic: ties break by tid, split points by position.
        """
        tids = [t for t in placement if t in report.access_rate]
        tids.sort(key=lambda t: (report.access_rate[t], t))
        n = len(tids)
        if n < 2:
            return []
        k = max(1, min(self.n_clusters, n // 2))
        bounds = [round(i * n / k) for i in range(k + 1)]
        return [tids[bounds[i]:bounds[i + 1]] for i in range(k)]

    def select(
        self,
        report: ObserverReport,
        placement: dict[int, int],
        selector: Selector,
        config: DikeConfig,
    ) -> list[ThreadPair]:
        """Run pair selection independently inside each cache cluster.

        The total is truncated to the pipeline's ``n_pairs`` budget so
        the swap-budget invariant holds regardless of cluster count.
        """
        if report.is_fair(config.fairness_threshold):
            return []
        clusters = self.partition(report, placement)
        if self.bus.enabled:
            for k, tids in enumerate(clusters):
                self.bus.emit(
                    CacheClusterFormed(
                        *self.bus.now,
                        cluster=k,
                        label=f"cluster-{k}",
                        tids=tuple(tids),
                    )
                )
        pairs: list[ThreadPair] = []
        for tids in clusters:
            if len(pairs) >= config.n_pairs:
                break
            sub = {t: placement[t] for t in tids}
            pairs.extend(selector.select(report, sub))
        return pairs[: config.n_pairs]


class Blacklister:
    """BLISS-style interference blacklist over pair selection."""

    def __init__(
        self, interference_threshold: float, blacklist_quanta: int
    ) -> None:
        require(
            interference_threshold > 0.0,
            "interference_threshold must be > 0",
        )
        require(blacklist_quanta >= 1, "blacklist_quanta must be >= 1")
        self.interference_threshold = interference_threshold
        self.blacklist_quanta = blacklist_quanta
        self.bus = NULL_BUS
        #: tid -> quanta of deprioritisation left
        self._banned: dict[int, int] = {}

    @property
    def banned(self) -> frozenset[int]:
        return frozenset(self._banned)

    def select(
        self,
        report: ObserverReport,
        placement: dict[int, int],
        selector: Selector,
    ) -> list[ThreadPair]:
        """Refresh the blacklist, then select among non-banned threads."""
        # Expire one quantum of every standing ban first, so a ban of N
        # quanta shadows exactly N selection rounds.
        for tid in list(self._banned):
            left = self._banned[tid] - 1
            if left <= 0:
                del self._banned[tid]
            else:
                self._banned[tid] = left
        rates = {
            t: report.access_rate[t]
            for t in placement
            if t in report.access_rate
        }
        if rates:
            mean = sum(rates.values()) / len(rates)
            if mean > 0.0:
                cut = self.interference_threshold * mean
                for tid, rate in rates.items():
                    if rate > cut:
                        self._banned[tid] = self.blacklist_quanta
        if self._banned and self.bus.enabled:
            self.bus.emit(
                CacheClusterFormed(
                    *self.bus.now,
                    cluster=0,
                    label="blacklisted",
                    tids=tuple(sorted(self._banned)),
                )
            )
        allowed = {
            t: v for t, v in placement.items() if t not in self._banned
        }
        return selector.select(report, allowed)


# --------------------------------------------------------------- stages


class ClusteredSelectorStage(Stage):
    """LFOC's selector: cluster by cache appetite, select within."""

    name = "selector"

    def run(self, pipeline: "LFOCScheduler", state: StageState) -> None:
        with pipeline.stage_timer(self):
            state.pairs = pipeline.clusterer.select(
                state.report, state.placement,
                pipeline.selector, pipeline.config,
            )


class BlacklistSelectorStage(Stage):
    """BLISS's selector: drop blacklisted interferers from pairing."""

    name = "selector"

    def run(self, pipeline: "BLISSScheduler", state: StageState) -> None:
        with pipeline.stage_timer(self):
            state.pairs = pipeline.blacklister.select(
                state.report, state.placement, pipeline.selector
            )


#: Dike's pipeline with the Selector stage replaced by clustering.
LFOC_STAGES: tuple[Stage, ...] = tuple(
    ClusteredSelectorStage() if isinstance(s, SelectorStage) else s
    for s in DIKE_STAGES
)

#: Dike's pipeline with the Selector stage replaced by blacklisting.
BLISS_STAGES: tuple[Stage, ...] = tuple(
    BlacklistSelectorStage() if isinstance(s, SelectorStage) else s
    for s in DIKE_STAGES
)


# ----------------------------------------------------------- schedulers


class LFOCScheduler(DikeScheduler):
    """Dike with fairness-oriented cache clustering (policy ``lfoc``)."""

    def __init__(
        self,
        config: DikeConfig | None = None,
        name: str = "lfoc",
        n_clusters: int = 3,
    ) -> None:
        super().__init__(config, name=name, stages=LFOC_STAGES)
        require(n_clusters >= 1, "n_clusters must be >= 1")
        self.n_clusters = n_clusters

    def prepare(self, context: SchedulingContext) -> None:
        super().prepare(context)
        self.clusterer = CacheClusterer(self.n_clusters)
        self.clusterer.bus = context.bus

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info["n_clusters"] = self.n_clusters
        return info


class BLISSScheduler(DikeScheduler):
    """Dike with interference blacklisting (policy ``bliss``)."""

    def __init__(
        self,
        config: DikeConfig | None = None,
        name: str = "bliss",
        interference_threshold: float = 1.5,
        blacklist_quanta: int = 4,
    ) -> None:
        super().__init__(config, name=name, stages=BLISS_STAGES)
        require(
            interference_threshold > 0.0,
            "interference_threshold must be > 0",
        )
        require(blacklist_quanta >= 1, "blacklist_quanta must be >= 1")
        self.interference_threshold = interference_threshold
        self.blacklist_quanta = blacklist_quanta

    def prepare(self, context: SchedulingContext) -> None:
        super().prepare(context)
        self.blacklister = Blacklister(
            self.interference_threshold, self.blacklist_quanta
        )
        self.blacklister.bus = context.bus

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info["interference_threshold"] = self.interference_threshold
        info["blacklist_quanta"] = self.blacklist_quanta
        return info
