"""Dike's Optimizer: adaptive tuning of the key parameters (§III-F, Alg. 2).

When adaptation is enabled the Optimizer periodically re-tunes
``⟨swapSize, quantaLength⟩`` toward the region of configuration space that
the paper's contour study (Figure 5) found best for the current **workload
class** and the user's **goal**:

======== ============================== ==============================
class    goal = Fairness                goal = Performance
======== ============================== ==============================
B        qLen down (floor 100 ms)       qLen up (cap 1000 ms)
UC       swapSize +2 (cap 16),          swapSize +2 (cap 16),
         qLen down (floor 200 ms)       qLen up (cap 1000 ms)
UM       swapSize +2 (cap 16),          qLen up (cap 1000 ms)
         qLen down (floor 500 ms)
======== ============================== ==============================

Each invocation moves at most one step per parameter ("updating
quantaLength from 100 to 1000 milliseconds requires calling optimizer for
3 times"), and nothing changes while the system is fair.  The workload
class is derived online from the Observer's C/M counts — never from
a-priori knowledge.
"""

from __future__ import annotations

from repro.core.config import (
    QUANTA_CHOICES_S,
    AdaptationGoal,
    DikeConfig,
)
from repro.core.observer import ObserverReport
from repro.obs.events import NULL_BUS, OptimizerStep

__all__ = ["Optimizer", "classify_workload"]

_MAX_SWAP = 16


def classify_workload(n_memory: int, n_compute: int, tolerance: float = 0.2) -> str:
    """Classify a live thread mix as ``"B"``, ``"UC"`` or ``"UM"``.

    The paper classes workloads by the *count* of memory vs compute
    intensive threads.  Online counts jitter quantum to quantum (phase
    bursts flip classifications), so a relative ``tolerance`` band around
    equality counts as balanced.
    """
    total = n_memory + n_compute
    if total == 0:
        return "B"
    imbalance = (n_compute - n_memory) / total
    if abs(imbalance) <= tolerance:
        return "B"
    return "UC" if imbalance > 0 else "UM"


class Optimizer:
    """Implements Algorithm 2 over the discrete configuration grid."""

    def __init__(self, config: DikeConfig) -> None:
        self.config = config
        self.bus = NULL_BUS
        self._quanta_since_update = 0

    def reset(self) -> None:
        self._quanta_since_update = 0

    # ------------------------------------------------------------------ API

    def maybe_update(self, report: ObserverReport) -> DikeConfig:
        """Advance the adaptation clock; possibly return a retuned config.

        Returns the (possibly unchanged) configuration to use from the next
        quantum on.  Mirrors Algorithm 2: no update while fair, one step
        per parameter per invocation.
        """
        cfg = self.config
        if cfg.goal is AdaptationGoal.NONE:
            return cfg
        self._quanta_since_update += 1
        if self._quanta_since_update < cfg.adaptation_period:
            return cfg
        self._quanta_since_update = 0

        if report.is_fair(cfg.fairness_threshold):
            return cfg  # Algorithm 2, lines 2-4

        wl_class = classify_workload(report.n_memory(), report.n_compute())
        swap, qlen = cfg.swap_size, cfg.quanta_length_s
        if cfg.goal is AdaptationGoal.FAIRNESS:
            if wl_class == "B":
                qlen = _step_quanta(qlen, down=True, floor=0.1)
            elif wl_class == "UC":
                swap = min(swap + 2, _MAX_SWAP)
                qlen = _step_quanta(qlen, down=True, floor=0.2)
            else:  # UM
                swap = min(swap + 2, _MAX_SWAP)
                qlen = _step_quanta(qlen, down=True, floor=0.5)
        else:  # PERFORMANCE
            if wl_class == "B":
                qlen = _step_quanta(qlen, down=False, cap=1.0)
            elif wl_class == "UC":
                swap = min(swap + 2, _MAX_SWAP)
                qlen = _step_quanta(qlen, down=False, cap=1.0)
            else:  # UM
                qlen = _step_quanta(qlen, down=False, cap=1.0)

        if swap == cfg.swap_size and qlen == cfg.quanta_length_s:
            return cfg
        new_cfg = cfg.with_parameters(swap_size=swap, quanta_length_s=qlen)
        self.config = new_cfg
        if self.bus.enabled:
            self.bus.emit(
                OptimizerStep(
                    *self.bus.now,
                    workload_class=wl_class,
                    old_swap_size=cfg.swap_size,
                    new_swap_size=swap,
                    old_quanta_s=cfg.quanta_length_s,
                    new_quanta_s=qlen,
                )
            )
        if self.bus.metrics is not None:
            self.bus.metrics.counter("dike.optimizer_steps").inc()
        return new_cfg


def _step_quanta(
    current: float,
    down: bool,
    floor: float | None = None,
    cap: float | None = None,
) -> float:
    """Move one step along ``QUANTA_CHOICES_S``, clamped to floor/cap."""
    choices = QUANTA_CHOICES_S
    # Snap to the nearest legal value first (configs are always legal in
    # practice; this guards hand-built configs).
    idx = min(range(len(choices)), key=lambda i: abs(choices[i] - current))
    idx = idx - 1 if down else idx + 1
    idx = max(0, min(idx, len(choices) - 1))
    value = choices[idx]
    if floor is not None:
        value = max(value, floor)
    if cap is not None:
        value = min(value, cap)
    return value
