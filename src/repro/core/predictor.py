"""Dike's closed-loop Predictor (§III-C, Eqns 1-3).

For a candidate pair ⟨t_l, t_h⟩ the predictor estimates each member's
memory access rate in the next quantum *if the swap happens*:

.. math::

    profit_{t_l} = CoreBW_{t_h} - AccessRate_{t_l} - Overhead_{t_l}

where ``CoreBW_{t_h}`` is the moving-mean bandwidth of the *destination*
core (t_h's current core — "we assume that if a thread migrates to a new
core, it consumes the new core's entire memory bandwidth"),
``AccessRate_{t_l}`` is the rate the thread is expected to keep if it does
not move, and

.. math::

    Overhead_{t_l} = \\frac{swapOH}{quantaLength} \\cdot AccessRate_{t_l}

discounts the context-switch time.  ``swapOH`` is a *belief*, not a
measurement — the closed loop treats any error in it as model noise that
the next quantum's feedback corrects.  The pair's ``totalProfit`` is the
sum of both members' profits (Eqn. 3); a negative member profit legally
encodes "this thread will slow down".

The predictor also produces the **predicted post-swap access rate** for
each member (``CoreBW_dest - Overhead``); the scheduler pairs those with
the next quantum's measurements to build the paper's prediction-error
figures (7 and 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import DikeConfig
from repro.core.observer import ObserverReport
from repro.core.selector import ThreadPair
from repro.obs.events import NULL_BUS, ProfitEvaluated

__all__ = ["PairPrediction", "Predictor"]


@dataclass(frozen=True)
class PairPrediction:
    """Profit estimate for one candidate pair."""

    pair: ThreadPair
    profit_l: float
    profit_h: float
    predicted_rate_l: float  # t_l's expected rate on t_h's core
    predicted_rate_h: float  # t_h's expected rate on t_l's core
    current_rate_l: float = 0.0
    current_rate_h: float = 0.0

    @property
    def total_profit(self) -> float:
        """Eqn. 3: the swap's expected change in aggregate access rate."""
        return self.profit_l + self.profit_h

    @property
    def fairness_benefit(self) -> bool:
        """True when the swap is predicted to shrink the pair's rate spread
        (the fairness half of "ensure each swap benefits fairness or
        performance", §III-D)."""
        spread_before = abs(self.current_rate_h - self.current_rate_l)
        spread_after = abs(self.predicted_rate_h - self.predicted_rate_l)
        return spread_after < spread_before


class Predictor:
    """Applies Eqns 1-3 to every candidate pair."""

    def __init__(self, config: DikeConfig) -> None:
        self.config = config
        self.bus = NULL_BUS

    def overhead(self, access_rate: float) -> float:
        """Eqn. 2: context-switch discount for one thread."""
        return (
            self.config.swap_overhead_belief_s
            / self.config.quanta_length_s
            * access_rate
        )

    def predict(
        self,
        pairs: list[ThreadPair],
        report: ObserverReport,
        placement: dict[int, int],
    ) -> list[PairPrediction]:
        """Estimate profits for each pair (order preserved)."""
        out: list[PairPrediction] = []
        for pair in pairs:
            rate_l = report.access_rate.get(pair.t_l, 0.0)
            rate_h = report.access_rate.get(pair.t_h, 0.0)
            core_l = placement[pair.t_l]
            core_h = placement[pair.t_h]
            bw_of_core_h = report.core_bw.get(core_h, float("nan"))
            bw_of_core_l = report.core_bw.get(core_l, float("nan"))
            # An unprobed machine (nan CoreBW) predicts no change: the
            # closed loop has no evidence yet, so profit degenerates to the
            # overhead penalty and the decider will skip the pair.
            if not np.isfinite(bw_of_core_h):
                bw_of_core_h = rate_l
            if not np.isfinite(bw_of_core_l):
                bw_of_core_l = rate_h
            oh_l = self.overhead(rate_l)
            oh_h = self.overhead(rate_h)
            prediction = PairPrediction(
                pair=pair,
                profit_l=bw_of_core_h - rate_l - oh_l,
                profit_h=bw_of_core_l - rate_h - oh_h,
                predicted_rate_l=max(bw_of_core_h - oh_l, 0.0),
                predicted_rate_h=max(bw_of_core_l - oh_h, 0.0),
                current_rate_l=rate_l,
                current_rate_h=rate_h,
            )
            out.append(prediction)
            if self.bus.enabled:
                self.bus.emit(
                    ProfitEvaluated(
                        *self.bus.now,
                        t_l=pair.t_l,
                        t_h=pair.t_h,
                        rate_l=rate_l,
                        rate_h=rate_h,
                        bw_dest_l=bw_of_core_h,
                        bw_dest_h=bw_of_core_l,
                        overhead_l=oh_l,
                        overhead_h=oh_h,
                        profit_l=prediction.profit_l,
                        profit_h=prediction.profit_h,
                        total_profit=prediction.total_profit,
                    )
                )
        return out
