"""Dike's configuration: the two key scheduling parameters and their ranges.

The paper (Section III-F) defines the configuration space:

* ``quantaLength`` drawn from **{100, 200, 500, 1000} ms**,
* ``swapSize`` any **even number from 2 to 16** (half of the 32 main-workload
  threads) — the number of *threads* migrated per quantum, i.e.
  ``swapSize / 2`` pairs,

giving 4 x 8 = **32 configurations**.  Non-adaptive Dike uses the median
default **⟨swapSize=8, quantaLength=500 ms⟩**; adaptive Dike starts there
and the Optimizer nudges one parameter one step per invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.util.validation import check_in_range, check_positive, require

__all__ = [
    "QUANTA_CHOICES_S",
    "SWAP_SIZE_CHOICES",
    "AdaptationGoal",
    "DikeConfig",
    "all_configurations",
]

#: Legal quantum lengths in seconds ({100, 200, 500, 1000} ms).
QUANTA_CHOICES_S: tuple[float, ...] = (0.1, 0.2, 0.5, 1.0)

#: Legal swap sizes (threads per quantum): even numbers 2..16.
SWAP_SIZE_CHOICES: tuple[int, ...] = (2, 4, 6, 8, 10, 12, 14, 16)


class AdaptationGoal(Enum):
    """What the Optimizer tunes for (Section III-F)."""

    NONE = "none"          # non-adaptive Dike
    FAIRNESS = "fairness"  # Dike-AF
    PERFORMANCE = "performance"  # Dike-AP


@dataclass(frozen=True)
class DikeConfig:
    """Full parameterisation of the Dike scheduler.

    Parameters
    ----------
    quanta_length_s:
        Time between scheduling decisions (the paper's ``quantaLength``).
    swap_size:
        Threads migrated per quantum (the paper's ``swapSize``); must be a
        positive even number.
    fairness_threshold:
        θ_f — the system is *fair* (no action) when the coefficient of
        variation of thread access rates is below this (0.1 default).
    goal:
        Adaptation goal; :attr:`AdaptationGoal.NONE` disables the Optimizer.
    adaptation_period:
        Optimizer invocations happen every this many quanta.
    classification_miss_threshold:
        LLC miss-rate boundary between compute and memory intensive threads
        (10 % per Xie & Loh, cited by the paper).
    corebw_window:
        Quanta window of the per-core moving-mean bandwidth (``CoreBW``).
    swap_overhead_belief_s:
        The scheduler's estimate of per-migration lost time (``swapOH`` in
        Eqn. 2).  Deliberately decoupled from the simulator's true cost —
        the closed loop is supposed to absorb this model error.
    cooldown_quanta:
        A thread swapped in the previous quantum is ineligible ("Dike does
        not swap a thread in consecutive quanta").
    cooldown_s:
        Additional wall-clock floor on the per-thread re-swap interval, so
        short quanta do not multiply the migration pressure on one thread
        (the quanta rule alone would let a 100 ms configuration swap a
        thread 5x as often as a 500 ms one).
    require_positive_profit:
        Drop pairs whose predicted ``totalProfit`` is negative.
    contention_metric:
        The per-thread progress signal fed to the Selector and fairness
        gate: ``"access_rate"`` (the paper's choice) or ``"ipc"`` (the
        alternative the paper argues *against* for heterogeneous machines —
        kept for the ablation bench).
    rotation_fallback:
        When the system is unfair but fewer violator pairs exist than
        ``swapSize`` allows, fill the remainder by pairing the sorted
        array's ends.  This realises the paper's "Dike will naturally
        migrate threads so that the rule is obeyed, on average, across
        several quanta": under deep saturation core identity blurs and
        strict violator pairing starves, yet rotating extremes is exactly
        what equalises accumulated progress.
    """

    quanta_length_s: float = 0.5
    swap_size: int = 8
    fairness_threshold: float = 0.1
    goal: AdaptationGoal = AdaptationGoal.NONE
    adaptation_period: int = 5
    classification_miss_threshold: float = 0.10
    corebw_window: int = 8
    swap_overhead_belief_s: float = 0.005
    cooldown_quanta: int = 1
    cooldown_s: float = 1.0
    require_positive_profit: bool = True
    rotation_fallback: bool = True
    contention_metric: str = "access_rate"

    def __post_init__(self) -> None:
        check_positive(self.quanta_length_s, "quanta_length_s")
        require(self.swap_size >= 2, "swap_size must be >= 2")
        require(self.swap_size % 2 == 0, "swap_size must be even")
        check_in_range(self.fairness_threshold, 0.0, 10.0, "fairness_threshold")
        require(self.adaptation_period >= 1, "adaptation_period must be >= 1")
        check_in_range(
            self.classification_miss_threshold, 0.0, 1.0,
            "classification_miss_threshold",
        )
        require(self.corebw_window >= 1, "corebw_window must be >= 1")
        require(self.swap_overhead_belief_s >= 0, "swap_overhead_belief_s >= 0")
        require(self.cooldown_quanta >= 0, "cooldown_quanta must be >= 0")
        require(self.cooldown_s >= 0, "cooldown_s must be >= 0")
        require(
            self.contention_metric in ("access_rate", "ipc"),
            "contention_metric must be 'access_rate' or 'ipc'",
        )

    @property
    def n_pairs(self) -> int:
        """Pairs formed per quantum (= swap_size / 2)."""
        return self.swap_size // 2

    @property
    def adaptive(self) -> bool:
        return self.goal is not AdaptationGoal.NONE

    def with_parameters(self, swap_size: int, quanta_length_s: float) -> "DikeConfig":
        """Copy with new key parameters (used by the Optimizer)."""
        return replace(self, swap_size=swap_size, quanta_length_s=quanta_length_s)

    def describe(self) -> dict[str, object]:
        return {
            "quanta_length_s": self.quanta_length_s,
            "swap_size": self.swap_size,
            "fairness_threshold": self.fairness_threshold,
            "goal": self.goal.value,
        }


def all_configurations() -> list[tuple[int, float]]:
    """The 32 ⟨swapSize, quantaLength⟩ configurations of Section III-F."""
    return [(s, q) for q in QUANTA_CHOICES_S for s in SWAP_SIZE_CHOICES]
