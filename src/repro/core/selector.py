"""Dike's Selector: pair formation via the placement rule (Algorithm 1).

The Selector sorts live threads by memory access rate and forms up to
``swapSize / 2`` pairs ⟨t_l, t_h⟩ of **placement-rule violators**:

* the *ideal mapping* binds high-access (memory-intensive) threads to
  high-bandwidth cores and low-access (compute-intensive) threads to
  low-bandwidth cores;
* a **violator** breaks that rule — an ``M`` thread on a low-bandwidth
  core, or a ``C`` thread on a high-bandwidth core;
* the head pointer scans from the *lowest*-access end for a violating
  low-access thread, the tail pointer from the *highest*-access end for a
  violating high-access thread; each pair swaps one of each.

Special cases, straight from the paper: if the system is already fair
(cv below θ_f) nothing is selected; if **all threads are the same type**
the placement rule is moot and pairs are formed from the two ends of the
sorted array; if the pointers cross, fewer violators than ``swapSize``
exist and selection stops early ("Dike will naturally migrate threads so
that the rule is obeyed, on average, across several quanta").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import DikeConfig
from repro.core.observer import ObserverReport
from repro.obs.events import NULL_BUS, PairProposed
from repro.util.stats import coefficient_of_variation

__all__ = ["ThreadPair", "Selector"]


@dataclass(frozen=True)
class ThreadPair:
    """One candidate swap: low-access thread ``t_l``, high-access ``t_h``."""

    t_l: int
    t_h: int


class Selector:
    """Stateless pair former (state lives in config + observer report)."""

    def __init__(self, config: DikeConfig) -> None:
        self.config = config
        self.bus = NULL_BUS

    def select(
        self, report: ObserverReport, placement: dict[int, int]
    ) -> list[ThreadPair]:
        """Form violator pairs (see :meth:`_select`), emitting one
        ``PairProposed`` event per pair when observability is on."""
        pairs = self._select(report, placement)
        if self.bus.enabled:
            for pair in pairs:
                self.bus.emit(
                    PairProposed(*self.bus.now, t_l=pair.t_l, t_h=pair.t_h)
                )
        return pairs

    def _select(
        self, report: ObserverReport, placement: dict[int, int]
    ) -> list[ThreadPair]:
        """Form up to ``swap_size / 2`` violator pairs for this quantum.

        Parameters
        ----------
        report:
            The Observer's digest (access rates, classes, core identity).
        placement:
            tid -> vcore for every live thread.
        """
        if report.is_fair(self.config.fairness_threshold):
            return []

        tids = [t for t in placement if t in report.access_rate]
        if len(tids) < 2:
            return []
        # Ascending by access rate; tid tiebreak for determinism.
        tids.sort(key=lambda t: (report.access_rate[t], t))
        n = len(tids)
        n_pairs = self.config.n_pairs

        classes = {t: report.classification.get(t, "C") for t in tids}
        if len(set(classes.values())) == 1:
            # All threads the same type: pair the two ends regardless of the
            # placement rule (Algorithm 1, lines 10-15).
            pairs = []
            for k in range(min(n_pairs, n // 2)):
                pairs.append(ThreadPair(t_l=tids[k], t_h=tids[n - 1 - k]))
            return pairs

        # The ideal mapping binds the top-k access-rate threads to the k
        # occupied high-bandwidth cores ("the smallest possible number of
        # threads running on the wrong core type").  A violator is a thread
        # whose rate rank disagrees with its core tier; additionally the
        # classic type rule applies (a compute-class thread sitting on a
        # high-BW core violates even when ranks happen to agree).
        on_high = {t: placement[t] in report.high_bw_cores for t in tids}
        k_high = sum(1 for t in tids if on_high[t])
        top_rank = {t: i >= n - k_high for i, t in enumerate(tids)}

        def violates(tid: int) -> bool:
            if top_rank[tid] and not on_high[tid]:
                return True  # high-access thread stuck on a low-BW core
            if not top_rank[tid] and on_high[tid] and classes[tid] == "C":
                return True  # compute thread hogging a high-BW core
            return False

        pairs: list[ThreadPair] = []
        paired: set[int] = set()
        head, tail = 0, n - 1
        while len(pairs) < n_pairs and head < tail:
            while head < tail and not violates(tids[head]):
                head += 1
            while tail > head and not violates(tids[tail]):
                tail -= 1
            if head >= tail:
                break
            pairs.append(ThreadPair(t_l=tids[head], t_h=tids[tail]))
            paired.update((tids[head], tids[tail]))
            head += 1
            tail -= 1

        if self.config.rotation_fallback and len(pairs) < n_pairs:
            # Fewer violators than swapSize allows while the system is
            # unfair: first rotate *within* the process groups whose own
            # threads have dispersed rates (pairing a group's slowest with
            # its fastest directly equalises the progress Eqn. 4 scores),
            # then rotate the global extremes so the placement rule is
            # obeyed on average over several quanta (see DikeConfig).
            for group_tids in self._unfair_groups(report, tids):
                if len(pairs) >= n_pairs:
                    break
                lo_t = next((t for t in group_tids if t not in paired), None)
                hi_t = next(
                    (t for t in reversed(group_tids) if t not in paired and t != lo_t),
                    None,
                )
                if lo_t is None or hi_t is None:
                    continue
                pairs.append(ThreadPair(t_l=lo_t, t_h=hi_t))
                paired.update((lo_t, hi_t))
            lo, hi = 0, n - 1
            while len(pairs) < n_pairs and lo < hi:
                while lo < hi and tids[lo] in paired:
                    lo += 1
                while hi > lo and tids[hi] in paired:
                    hi -= 1
                if lo >= hi:
                    break
                pairs.append(ThreadPair(t_l=tids[lo], t_h=tids[hi]))
                paired.update((tids[lo], tids[hi]))
                lo += 1
                hi -= 1
        return pairs

    def _unfair_groups(
        self, report: ObserverReport, sorted_tids: list[int]
    ) -> list[list[int]]:
        """Process groups whose own threads show dispersed access rates.

        Returns each qualifying group's tids in ascending rate order,
        most-dispersed (by bandwidth-weighted cv) first.  Groups carrying a
        negligible share of traffic are skipped — their dispersion is not a
        memory-fairness problem a swap can fix.
        """
        if report.group_of is None:
            return []
        rates = report.access_rate
        by_group: dict[int, list[int]] = {}
        for t in sorted_tids:
            g = report.group_of.get(t)
            if g is not None:
                by_group.setdefault(g, []).append(t)
        total = sum(rates[t] for t in sorted_tids) or 1.0
        scored: list[tuple[float, list[int]]] = []
        for g, tids in by_group.items():
            if len(tids) < 2:
                continue
            weight = sum(rates[t] for t in tids) / total
            if weight < 0.05:
                continue
            cv = coefficient_of_variation([rates[t] for t in tids])
            if cv > self.config.fairness_threshold:
                scored.append((weight * cv, tids))
        scored.sort(key=lambda x: -x[0])
        return [tids for _, tids in scored]
