"""Hierarchical Dike: cluster-then-schedule for thousand-vcore machines.

The paper's Selector does a global fairness sort and pairwise swap search
every quantum — fine at 40 vcores, hopeless at 1024.  Following Agon
(coarse classification into contention clusters, then per-cluster
scheduling at a fraction of the decision cost) and LFOC (lightweight
fairness clustering composing with per-cluster policies), this module
adds a **cluster-then-schedule** family as stage substitutions on the
Dike pipeline (`repro.core.dike`):

* :class:`ClusterStage` partitions the machine's sockets into
  ``n_clusters`` socket-aligned vcore partitions and derives each live
  thread's cluster from its current placement, emitting
  :class:`~repro.obs.events.ClusterAssigned` whenever membership changes.
* :class:`HierSelectorStage` runs Dike's violator-pair selection *inside
  one cluster per quantum*, round-robin over clusters — each cluster gets
  an independent Selector -> Predictor -> Decider -> Migrator decision
  confined to its vcore partition (selected pairs never cross partitions),
  and the per-quantum decision cost drops to one cluster's sort instead
  of the whole machine's.
* :class:`InterClusterRebalancerStage` periodically exchanges extreme
  threads between the most divergent clusters when per-cluster contention
  counters drift apart — Agon-style on mean access rate (``dike-hier``)
  or LFOC-style on per-cluster rate CV, a fairness signal
  (``dike-hier-fair``) — emitting
  :class:`~repro.obs.events.RebalanceExecuted`.  Exchanges are ``Swap``
  pairs drawn from the *leftover* swap budget and registered with the
  Decider's cooldown book, so the swap-budget, cooldown and permutation
  invariants hold exactly as for flat Dike.

With an effective cluster count of 1 every hierarchical stage reduces to
the flat path (no extra events, the Selector sees the full placement), so
``dike-hier`` with ``n_clusters=1`` is trace-identical to flat ``dike`` —
the equivalence gate CI enforces on the paper topology.

Per-run mutable state (partitions, membership, rebalance counters) lives
on the scheduler, never on the stage objects: stages are
stateless-by-convention shared singletons (see `repro.schedulers.pipeline`).
"""

from __future__ import annotations

from repro.core.config import DikeConfig
from repro.core.decider import Decider
from repro.core.dike import DIKE_STAGES, DikeScheduler, MigratorStage, SelectorStage
from repro.core.observer import ObserverReport
from repro.core.predictor import PairPrediction
from repro.core.selector import ThreadPair
from repro.obs.events import NULL_BUS, ClusterAssigned, RebalanceExecuted
from repro.schedulers.base import SchedulingContext
from repro.schedulers.pipeline import Stage, StageState
from repro.sim.topology import Topology
from repro.util.validation import require

__all__ = [
    "ClusterPartitioner",
    "InterClusterRebalancer",
    "ClusterStage",
    "HierSelectorStage",
    "InterClusterRebalancerStage",
    "HIER_STAGES",
    "HierarchicalScheduler",
    "CLUSTER_SIGNALS",
]

#: The rebalancer's divergence signals: ``"rate"`` is the Agon-style mean
#: access rate (contention pressure), ``"fairness"`` the LFOC-style
#: coefficient of variation of member rates (intra-cluster unfairness).
CLUSTER_SIGNALS = ("rate", "fairness")


class ClusterPartitioner:
    """Socket-aligned vcore partitions and placement-derived membership.

    Sockets are split into ``k`` contiguous runs (``k`` = requested
    cluster count capped by the socket count; 0 = one cluster per
    socket), so every cluster's vcore partition is a union of whole
    sockets — partitions are disjoint, socket-aligned, and cover the
    machine.  A thread belongs to the cluster owning its current vcore,
    so swap-based scheduling (which never leaves a partition except
    through the rebalancer) keeps membership stable.
    """

    def __init__(self, topology: Topology, n_clusters: int) -> None:
        require(n_clusters >= 0, "n_clusters must be >= 0 (0 = auto)")
        n_sockets = topology.n_sockets
        k = n_sockets if n_clusters == 0 else min(n_clusters, n_sockets)
        self.k = k
        bounds = [round(i * n_sockets / k) for i in range(k + 1)]
        self.socket_runs: tuple[tuple[int, ...], ...] = tuple(
            tuple(range(bounds[i], bounds[i + 1])) for i in range(k)
        )
        self.labels: tuple[str, ...] = tuple(
            f"sockets-{run[0]}-{run[-1]}" for run in self.socket_runs
        )
        self.vcore_partitions: tuple[tuple[int, ...], ...] = tuple(
            tuple(v for sid in run for v in topology.vcores_on_socket(sid))
            for run in self.socket_runs
        )
        socket_cluster = [0] * n_sockets
        for idx, run in enumerate(self.socket_runs):
            for sid in run:
                socket_cluster[sid] = idx
        #: vcore id -> cluster index (plain list: fastest scalar lookup)
        self.vcore_cluster: list[int] = [
            socket_cluster[int(s)] for s in topology.vcore_socket
        ]

    def members(self, placement: dict[int, int]) -> list[list[int]]:
        """Cluster membership of every placed thread, from its vcore."""
        out: list[list[int]] = [[] for _ in range(self.k)]
        vcore_cluster = self.vcore_cluster
        for tid, vcore in placement.items():
            out[vcore_cluster[vcore]].append(tid)
        return out


class InterClusterRebalancer:
    """Periodic whole-thread exchange between divergent clusters.

    Every ``period`` quanta the per-cluster signal (see
    :data:`CLUSTER_SIGNALS`) is computed; when the extreme clusters
    diverge by more than ``threshold`` (relative to the mean signal), the
    hottest thread of the high cluster and the coolest thread of the low
    cluster exchange vcores.  The exchange is an ordinary ``Swap`` pair:
    it consumes leftover swap budget, skips threads in cooldown or
    already claimed this quantum, and registers both threads in the
    Decider's cooldown book — so every flat-Dike invariant keeps holding.
    """

    def __init__(self, period: int, threshold: float, signal: str) -> None:
        require(period >= 1, "rebalance_period must be >= 1")
        require(threshold >= 0.0, "rebalance_threshold must be >= 0")
        require(
            signal in CLUSTER_SIGNALS,
            f"cluster signal must be one of {CLUSTER_SIGNALS}, got {signal!r}",
        )
        self.period = period
        self.threshold = threshold
        self.signal = signal
        self.bus = NULL_BUS
        self.n_rebalances = 0

    def _signal(self, rates: list[float]) -> float | None:
        if not rates:
            return None
        mean = sum(rates) / len(rates)
        if self.signal == "rate":
            return mean
        if mean <= 0.0:
            return 0.0
        var = sum((r - mean) ** 2 for r in rates) / len(rates)
        return (var ** 0.5) / mean

    def rebalance(
        self,
        members: list[list[int]],
        report: ObserverReport,
        accepted: list[PairPrediction],
        decider: Decider,
        config: DikeConfig,
        quantum_index: int,
        time_s: float,
    ) -> list[PairPrediction]:
        """At most one cross-cluster exchange, within the leftover budget."""
        if quantum_index == 0 or quantum_index % self.period != 0:
            return []
        if len(accepted) >= config.n_pairs:
            return []  # the per-cluster decision already spent the budget
        rates = report.access_rate
        claimed = {t for p in accepted for t in (p.pair.t_l, p.pair.t_h)}

        def eligible(tid: int) -> bool:
            return (
                tid in rates
                and tid not in claimed
                and not decider._in_cooldown(tid, quantum_index, time_s)
            )

        signals: list[float | None] = [
            self._signal([rates[t] for t in tids if t in rates])
            for tids in members
        ]
        live = [i for i, s in enumerate(signals) if s is not None and members[i]]
        if len(live) < 2:
            return []
        hi = max(live, key=lambda i: (signals[i], -i))
        lo = min(live, key=lambda i: (signals[i], i))
        if hi == lo:
            return []
        scale = sum(abs(signals[i]) for i in live) / len(live)
        if signals[hi] - signals[lo] <= self.threshold * max(scale, 1e-12):
            return []
        donors = [t for t in members[hi] if eligible(t)]
        recipients = [t for t in members[lo] if eligible(t)]
        if not donors or not recipients:
            return []
        # Hottest thread of the pressured cluster trades places with the
        # coolest thread of the relaxed one: pressure moves to headroom.
        t_h = max(donors, key=lambda t: (rates[t], -t))
        t_l = min(recipients, key=lambda t: (rates[t], t))
        pred = PairPrediction(
            pair=ThreadPair(t_l=t_l, t_h=t_h),
            profit_l=0.0,
            profit_h=0.0,
            predicted_rate_l=rates[t_l],
            predicted_rate_h=rates[t_h],
            current_rate_l=rates[t_l],
            current_rate_h=rates[t_h],
        )
        decider._last_swap[t_l] = (quantum_index, time_s)
        decider._last_swap[t_h] = (quantum_index, time_s)
        self.n_rebalances += 1
        if self.bus.enabled:
            self.bus.emit(
                RebalanceExecuted(
                    *self.bus.now,
                    cluster_a=hi,
                    cluster_b=lo,
                    tids_a=(t_h,),
                    tids_b=(t_l,),
                    signal_a=float(signals[hi]),
                    signal_b=float(signals[lo]),
                )
            )
        if self.bus.metrics is not None:
            self.bus.metrics.counter("dike.rebalance_executed").inc()
        return [pred]


# --------------------------------------------------------------- stages


class ClusterStage(Stage):
    """Refresh thread-cluster membership from the current placement."""

    name = "cluster"

    def run(self, pipeline: "HierarchicalScheduler", state: StageState) -> None:
        partitioner = pipeline.partitioner
        if partitioner.k <= 1:
            # Single cluster: the hierarchical pipeline *is* flat Dike.
            # No membership, no events — traces stay byte-identical.
            pipeline._cluster_members = None
            return
        with pipeline.stage_timer(self):
            members = partitioner.members(state.placement)
        pipeline._cluster_members = members
        if pipeline.bus.enabled:
            for idx, tids in enumerate(members):
                key = tuple(tids)
                if pipeline._emitted_members[idx] != key:
                    pipeline._emitted_members[idx] = key
                    pipeline.bus.emit(
                        ClusterAssigned(
                            *pipeline.bus.now,
                            cluster=idx,
                            label=partitioner.labels[idx],
                            tids=key,
                            vcores=partitioner.vcore_partitions[idx],
                        )
                    )


class HierSelectorStage(Stage):
    """Per-cluster violator-pair selection, round-robin over clusters.

    Quantum ``q`` decides for cluster ``q % k``: the Selector sees only
    that cluster's threads (its vcore partition), so a swap can never
    cross partitions and the per-quantum sort is one cluster wide.  With
    one cluster this is exactly the flat ``SelectorStage``.
    """

    name = "selector"

    def run(self, pipeline: "HierarchicalScheduler", state: StageState) -> None:
        with pipeline.stage_timer(self):
            members = pipeline._cluster_members
            if members is None:
                state.pairs = pipeline.selector.select(state.report, state.placement)
                return
            idx = state.counters.quantum_index % len(members)
            sub = {t: state.placement[t] for t in members[idx]}
            pairs = pipeline.selector.select(state.report, sub)
            state.pairs = pairs[: pipeline.config.n_pairs]


class InterClusterRebalancerStage(Stage):
    """Periodically exchange threads between divergent clusters."""

    name = "rebalancer"

    def run(self, pipeline: "HierarchicalScheduler", state: StageState) -> None:
        members = pipeline._cluster_members
        if members is None:
            return
        with pipeline.stage_timer(self):
            extra = pipeline.rebalancer.rebalance(
                members,
                state.report,
                state.accepted,
                pipeline.decider,
                pipeline.config,
                state.counters.quantum_index,
                state.counters.time_s,
            )
        if extra:
            state.accepted.extend(extra)


def _hier_stages() -> tuple[Stage, ...]:
    stages: list[Stage] = []
    for stage in DIKE_STAGES:
        if isinstance(stage, SelectorStage):
            stages.append(ClusterStage())
            stages.append(HierSelectorStage())
        elif isinstance(stage, MigratorStage):
            stages.append(InterClusterRebalancerStage())
            stages.append(stage)
        else:
            stages.append(stage)
    return tuple(stages)


#: Dike's pipeline with clustering, per-cluster selection and the
#: inter-cluster rebalancer spliced in as stage substitutions.
HIER_STAGES: tuple[Stage, ...] = _hier_stages()


# ----------------------------------------------------------- scheduler


class HierarchicalScheduler(DikeScheduler):
    """Cluster-then-schedule Dike (policies ``dike-hier`` / ``dike-hier-fair``)."""

    def __init__(
        self,
        config: DikeConfig | None = None,
        name: str = "dike-hier",
        n_clusters: int = 0,
        rebalance_period: int = 10,
        rebalance_threshold: float = 0.2,
        cluster_signal: str = "rate",
    ) -> None:
        super().__init__(config, name=name, stages=HIER_STAGES)
        require(n_clusters >= 0, "n_clusters must be >= 0 (0 = auto)")
        require(rebalance_period >= 1, "rebalance_period must be >= 1")
        require(rebalance_threshold >= 0.0, "rebalance_threshold must be >= 0")
        require(
            cluster_signal in CLUSTER_SIGNALS,
            f"cluster_signal must be one of {CLUSTER_SIGNALS}, "
            f"got {cluster_signal!r}",
        )
        self.n_clusters = n_clusters
        self.rebalance_period = rebalance_period
        self.rebalance_threshold = rebalance_threshold
        self.cluster_signal = cluster_signal

    def prepare(self, context: SchedulingContext) -> None:
        super().prepare(context)
        self.partitioner = ClusterPartitioner(context.topology, self.n_clusters)
        self.rebalancer = InterClusterRebalancer(
            self.rebalance_period, self.rebalance_threshold, self.cluster_signal
        )
        self.rebalancer.bus = context.bus
        #: per-quantum membership (None while the effective k is 1)
        self._cluster_members: list[list[int]] | None = None
        #: last ClusterAssigned payload per cluster (change detection)
        self._emitted_members: list[tuple[int, ...] | None] = [
            None
        ] * self.partitioner.k

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info["n_clusters"] = self.n_clusters
        info["rebalance_period"] = self.rebalance_period
        info["rebalance_threshold"] = self.rebalance_threshold
        info["cluster_signal"] = self.cluster_signal
        partitioner = getattr(self, "partitioner", None)
        if partitioner is not None:
            info["effective_clusters"] = partitioner.k
            info["n_rebalances"] = self.rebalancer.n_rebalances
        return info
