"""Dike's Observer: thread classification and core identification (§III-A).

Per quantum the Observer:

* reads each thread's **memory access rate** (LLC misses / second) and
  **LLC miss rate** from the hardware-counter sample;
* classifies threads *memory-intensive* (``M``, miss rate > 10 %) or
  *compute-intensive* (``C``) — re-classified every quantum because
  "memory intensity of a thread dynamically changes as thread goes through
  execution phases";
* maintains ``CoreBW`` — the moving mean of bandwidth *deliverable by*
  each virtual core — and partitions cores into *high-* and
  *low-bandwidth* halves at the median.

CoreBW semantics (an interpretation the paper leaves implicit): a core's
achieved bandwidth only reveals its capability when its occupant actually
stresses the memory path.  The Observer therefore folds a quantum's
achieved bandwidth into a core's moving mean **only when the occupant was
memory-intensive** — such an occupant acts as a *bandwidth probe* ("we
assume that if a thread migrates to a new core, it consumes the new core's
entire memory bandwidth").  A core that has never been probed reports an
**optimistic** estimate (the best probed value seen anywhere): optimism
drives exploratory swaps onto unknown cores, and the closed loop corrects
the estimate one quantum later — exactly the feedback-absorbs-model-error
argument of §III-C.  Probed estimates embed current contention, so "a core
may become low-bandwidth due to contention" falls out naturally.

Fairness signal (``getSystemFairness``): the paper defines fairness
per application — "fairness in an application means that threads'
runtimes are approximately close together" — and Eqn. 4 averages a
per-benchmark cv.  The runtime gate mirrors that: the signal is the
**bandwidth-weighted mean over process groups of the cv of each group's
thread access rates**.  A raw global cv would compare memory apps against
compute apps and read "unfair" forever; an unweighted group mean would let
an idle compute app's noisy near-zero rates dominate.  Weighting each
group's internal dispersion by its share of total traffic measures exactly
what Dike can fix: unequal memory progress among sibling threads that
actually use memory.  (Group membership is OS-visible — it is the
process/tgid of each thread.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.config import DikeConfig
from repro.obs.events import (
    NULL_BUS,
    ClassificationChanged,
    FairnessComputed,
    ObserverSample,
)
from repro.sim.counters import QuantumCounters
from repro.util.stats import MovingMean, coefficient_of_variation

__all__ = ["classify", "ObserverReport", "Observer"]


def classify(miss_rate: float, threshold: float) -> str:
    """The paper's C/M rule, pinned in one place: ``"M"`` iff the LLC
    miss rate *strictly exceeds* the threshold (10 % per Xie & Loh).

    The boundary matters: a thread at exactly ``miss_rate == threshold``
    is compute-intensive (``"C"``) — the paper says "miss rate > 10 %",
    not ">=".  Every classification site (Observer, ablations, tests)
    must call this function rather than re-spelling the comparison.
    """
    return "M" if miss_rate > threshold else "C"


@dataclass(frozen=True)
class ObserverReport:
    """The Observer's per-quantum digest consumed by Selector/Predictor.

    Attributes
    ----------
    access_rate:
        tid -> measured access rate this quantum (misses/second).
    miss_rate:
        tid -> LLC miss ratio this quantum.
    classification:
        tid -> ``"M"`` or ``"C"``.
    core_bw:
        vcore -> CoreBW capability estimate (accesses/second).
    high_bw_cores:
        Set of vcores currently identified as high-bandwidth.
    fairness:
        Dike's ``getSystemFairness()`` value (lower = fairer).
    cache_occupancy:
        tid -> allocated LLC share (MB) when the run uses an active
        cache backend (`repro.sim.llc`); ``None`` under the default
        ``NullLLC``.  Cache-aware policies (lfoc/bliss) read this.
    """

    access_rate: dict[int, float]
    miss_rate: dict[int, float]
    classification: dict[int, str]
    core_bw: dict[int, float]
    high_bw_cores: frozenset[int]
    fairness: float
    group_of: dict[int, int] | None = None
    demand_estimate: dict[int, float] | None = None
    cache_occupancy: dict[int, float] | None = None

    def is_fair(self, threshold: float) -> bool:
        """True when no scheduling action is needed this quantum."""
        return bool(np.isnan(self.fairness)) or self.fairness < threshold

    def n_memory(self) -> int:
        return sum(1 for c in self.classification.values() if c == "M")

    def n_compute(self) -> int:
        return sum(1 for c in self.classification.values() if c == "C")


class Observer:
    """Stateful Observer: feed counters, get an :class:`ObserverReport`."""

    def __init__(
        self,
        config: DikeConfig,
        n_vcores: int,
        groups: dict[int, int] | None = None,
    ) -> None:
        """
        Parameters
        ----------
        config:
            Dike configuration (thresholds, CoreBW window).
        n_vcores:
            Number of virtual cores on the machine.
        groups:
            tid -> process-group id, used by the per-application fairness
            signal.  ``None`` degrades to a single global group.
        """
        self.config = config
        self.n_vcores = n_vcores
        self.groups = dict(groups) if groups else None
        self.bus = NULL_BUS
        self._core_bw = [
            MovingMean(window=config.corebw_window) for _ in range(n_vcores)
        ]
        self._best_probe = float("nan")
        #: tid -> decaying peak of observed access rate (the thread's
        #: *demand*: what it would consume given an uncontended fast core)
        self._demand: dict[int, float] = {}
        #: tid -> previous quantum's classification (for change events)
        self._prev_class: dict[int, str] = {}

    def reset(self) -> None:
        for mm in self._core_bw:
            mm.reset()
        self._best_probe = float("nan")
        self._demand.clear()
        self._prev_class.clear()

    # ------------------------------------------------------------------ API

    def update(self, counters: QuantumCounters) -> ObserverReport:
        """Digest one quantum of counter readings."""
        access_rate: dict[int, float] = {}
        miss_rate: dict[int, float] = {}
        classification: dict[int, str] = {}
        active: list[tuple[int, float]] = []  # (tid, rate) of running threads
        threshold = self.config.classification_miss_threshold

        use_ipc = self.config.contention_metric == "ipc"
        cache_occupancy: dict[int, float] | None = None
        for s in counters.samples:
            access_rate[s.tid] = s.ips if use_ipc else s.access_rate
            miss_rate[s.tid] = s.miss_rate
            classification[s.tid] = classify(s.miss_rate, threshold)
            if s.cache_mb > 0.0:
                if cache_occupancy is None:
                    cache_occupancy = {}
                cache_occupancy[s.tid] = s.cache_mb
            if s.instructions > 0.0:  # barrier-idle threads don't define fairness
                active.append((s.tid, access_rate[s.tid]))
                prev = self._demand.get(s.tid, 0.0)
                self._demand[s.tid] = max(s.access_rate, 0.75 * prev)

        # Probe-based CoreBW update: only a memory-intensive occupant
        # reveals what its core can deliver.
        bw = counters.core_bandwidth
        for s in counters.samples:
            if classification[s.tid] == "M" and s.instructions > 0.0:
                probe = float(bw[s.vcore])
                self._core_bw[s.vcore].update(probe)
                if not math.isfinite(self._best_probe) or probe > self._best_probe:
                    self._best_probe = probe

        core_bw = {v: self.core_bw_value(v) for v in range(self.n_vcores)}
        high = self._identify_high_bw(core_bw)
        fairness = self._system_fairness(active)
        if self.bus.enabled:
            now = self.bus.now
            self.bus.emit(
                ObserverSample(
                    *now,
                    access_rate=dict(access_rate),
                    miss_rate=dict(miss_rate),
                    classification=dict(classification),
                    core_bw=dict(core_bw),
                    high_bw_cores=tuple(sorted(high)),
                )
            )
            for tid, cls in classification.items():
                old = self._prev_class.get(tid)
                if old is not None and old != cls:
                    self.bus.emit(
                        ClassificationChanged(*now, tid=tid, old=old, new=cls)
                    )
            self.bus.emit(
                FairnessComputed(
                    *now,
                    value=float(fairness),
                    threshold=self.config.fairness_threshold,
                    fair=bool(
                        np.isnan(fairness)
                        or fairness < self.config.fairness_threshold
                    ),
                )
            )
        self._prev_class = classification
        return ObserverReport(
            access_rate=access_rate,
            miss_rate=miss_rate,
            classification=classification,
            core_bw=core_bw,
            high_bw_cores=high,
            fairness=fairness,
            group_of=self.groups,
            demand_estimate=dict(self._demand),
            cache_occupancy=cache_occupancy,
        )

    def core_bw_value(self, vcore: int) -> float:
        """CoreBW estimate: probed moving mean, else the optimistic prior."""
        value = self._core_bw[vcore].value
        if math.isfinite(value):
            return value
        return self._best_probe  # nan before any probe anywhere

    # ------------------------------------------------------------- internals

    def _system_fairness(self, active: list[tuple[int, float]]) -> float:
        """Bandwidth-weighted mean of per-group access-rate cv.

        See the module docstring for why this — not a raw global cv — is
        the faithful reading of the paper's ``getSystemFairness``.
        """
        if len(active) < 2:
            return float("nan")
        if self.groups is None:
            return coefficient_of_variation([r for _, r in active])
        by_group: dict[int, list[float]] = {}
        for tid, rate in active:
            by_group.setdefault(self.groups.get(tid, -1), []).append(rate)
        total = sum(sum(rates) for rates in by_group.values())
        if total <= 0.0:
            return 0.0  # nobody is using memory: trivially fair
        signal = 0.0
        for rates in by_group.values():
            if len(rates) < 2:
                continue
            weight = sum(rates) / total
            cv = coefficient_of_variation(rates)
            if math.isfinite(cv):
                signal += weight * cv
        return signal

    def _identify_high_bw(self, core_bw: dict[int, float]) -> frozenset[int]:
        """Median split of capability estimates over all cores.

        Unprobed (optimistic) cores sit at the best probed value, so they
        land in the high half and attract exploration.
        """
        finite = sorted(
            bw for bw in core_bw.values() if not math.isnan(bw) and not math.isinf(bw)
        )
        if not finite:
            return frozenset()
        # Exact median of the sorted finite values (middle element, or the
        # mean of the two middles) — equals np.median bit-for-bit without
        # the array round-trip, which is measurable at one call per quantum.
        mid = len(finite) // 2
        if len(finite) % 2:
            median = finite[mid]
        else:
            median = (finite[mid - 1] + finite[mid]) / 2.0
        vmin = finite[0]
        # ">= median and > min" keeps the split meaningful when estimates
        # tie at the top (e.g. many optimistically-initialised cores) and
        # returns the empty set when every core looks identical.
        return frozenset(
            v
            for v, bw in core_bw.items()
            if not math.isnan(bw) and not math.isinf(bw)
            and bw >= median
            and bw > vmin
        )
