"""Dike — the paper's primary contribution.

Components mirror Figure 3 of the paper: Observer, Selector, Predictor,
Decider, Migrator and Optimizer, composed by :class:`DikeScheduler`.
"""

from repro.core.config import (
    QUANTA_CHOICES_S,
    SWAP_SIZE_CHOICES,
    AdaptationGoal,
    DikeConfig,
    all_configurations,
)
from repro.core.decider import Decider
from repro.core.dike import DikeScheduler, dike, dike_af, dike_ap
from repro.core.migrator import Migrator
from repro.core.observer import Observer, ObserverReport
from repro.core.optimizer import Optimizer, classify_workload
from repro.core.predictor import PairPrediction, Predictor
from repro.core.selector import Selector, ThreadPair

__all__ = [
    "QUANTA_CHOICES_S",
    "SWAP_SIZE_CHOICES",
    "AdaptationGoal",
    "DikeConfig",
    "all_configurations",
    "Decider",
    "DikeScheduler",
    "dike",
    "dike_af",
    "dike_ap",
    "Migrator",
    "Observer",
    "ObserverReport",
    "Optimizer",
    "classify_workload",
    "PairPrediction",
    "Predictor",
    "Selector",
    "ThreadPair",
]
